//! Step 3: searching for an error trace on the original design, staging
//! engines cheap-to-expensive: guided random simulation first, trace-guided
//! sequential ATPG second.

use rfn_atpg::{AtpgOutcome, SequentialAtpg};
use rfn_netlist::{Cube, Netlist, Property, Trace};
use rfn_sim::{random_concretize, PackedSim, RandomSimOptions, Tv};

use crate::RfnError;

/// Options for the staged concretization of Step 3.
#[derive(Clone, Debug)]
pub struct ConcretizeOptions {
    /// Limits for the trace-guided sequential ATPG (the expensive stage).
    pub atpg: rfn_atpg::AtpgOptions,
    /// The random-simulation engine (the cheap stage, tried first);
    /// `sim.batches = 0` disables it.
    pub sim: RandomSimOptions,
    /// When the random stage misses, bias the ATPG's objective order
    /// fail-first by the stage's per-cycle survivor counts (frames where
    /// random patterns fell off the guidance corridor are attacked first).
    /// Ignored if `atpg.frame_priority` is already set by the caller.
    pub bias_frame_order: bool,
}

impl Default for ConcretizeOptions {
    fn default() -> Self {
        ConcretizeOptions {
            atpg: rfn_atpg::AtpgOptions::default(),
            sim: RandomSimOptions::default(),
            bias_frame_order: true,
        }
    }
}

/// Effort statistics of concretization attempts; accumulable across
/// attempts and iterations with [`ConcretizeStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcretizeStats {
    /// 64-pattern batches the random engine simulated.
    pub random_batches: u64,
    /// Random patterns simulated (64 per batch).
    pub random_patterns: u64,
    /// Random patterns that landed in the target cube.
    pub random_hits: u64,
    /// Packed gate evaluations the random engine spent (64 lanes each).
    pub random_gate_evals: u64,
    /// Whether a falsification came from the random engine — the sequential
    /// ATPG was never entered for that abstract trace, i.e. the witness cost
    /// zero ATPG backtracks.
    pub random_falsified: bool,
    /// Sequential-ATPG backtracks spent.
    pub atpg_backtracks: u64,
    /// Sequential-ATPG decisions spent.
    pub atpg_decisions: u64,
}

impl ConcretizeStats {
    /// Accumulates another attempt's counters into this one.
    pub fn merge(&mut self, other: &ConcretizeStats) {
        self.random_batches += other.random_batches;
        self.random_patterns += other.random_patterns;
        self.random_hits += other.random_hits;
        self.random_gate_evals += other.random_gate_evals;
        self.random_falsified |= other.random_falsified;
        self.atpg_backtracks += other.atpg_backtracks;
        self.atpg_decisions += other.atpg_decisions;
    }
}

/// Result of a concretization attempt.
#[derive(Clone, Debug)]
pub enum ConcretizeOutcome {
    /// A real error trace was found and validated by concrete simulation.
    Falsified(Trace),
    /// The guided search proved no error trace exists *under the guidance
    /// constraints at this depth* — the abstract trace is spurious.
    Spurious,
    /// The search aborted on a resource limit; the abstract trace's status is
    /// unknown (treated like spurious by the RFN loop, which then refines).
    Unknown,
}

/// Tries to turn an abstract error trace into a real error trace of the
/// original design (the paper's Step 3).
///
/// The abstract trace provides both the search depth (the real shortest
/// error trace can only be longer) and per-cycle constraint cubes that guide
/// the engines — including the trace's pseudo-input assignments, which
/// become register constraints on the original design.
///
/// Engines run cheap to expensive: guided random simulation
/// ([`rfn_sim::random_concretize`]) first; if it misses, trace-guided
/// sequential ATPG with its objective order biased by the random stage's
/// per-cycle survivor counts.
///
/// Every `Falsified` trace has been replayed with concrete simulation before
/// being returned, so falsification is sound even though the search is
/// heuristic.
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize(
    netlist: &Netlist,
    property: &Property,
    abstract_trace: &Trace,
    options: &ConcretizeOptions,
) -> Result<ConcretizeOutcome, RfnError> {
    concretize_with_stats(netlist, property, abstract_trace, options).map(|(o, _)| o)
}

/// Like [`concretize`], additionally returning the per-engine effort
/// statistics of the attempt.
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize_with_stats(
    netlist: &Netlist,
    property: &Property,
    abstract_trace: &Trace,
    options: &ConcretizeOptions,
) -> Result<(ConcretizeOutcome, ConcretizeStats), RfnError> {
    let target: Cube = [(property.signal, property.value)].into_iter().collect();
    concretize_cube_with_stats(netlist, &target, abstract_trace, options)
}

/// Like [`concretize`], but with an arbitrary target cube checked at the
/// final cycle (the coverage-analysis mode targets coverage-state cubes).
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize_cube(
    netlist: &Netlist,
    target: &Cube,
    abstract_trace: &Trace,
    options: &ConcretizeOptions,
) -> Result<ConcretizeOutcome, RfnError> {
    concretize_cube_with_stats(netlist, target, abstract_trace, options).map(|(o, _)| o)
}

/// Like [`concretize_cube`], additionally returning the per-engine effort
/// statistics of the attempt.
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize_cube_with_stats(
    netlist: &Netlist,
    target: &Cube,
    abstract_trace: &Trace,
    options: &ConcretizeOptions,
) -> Result<(ConcretizeOutcome, ConcretizeStats), RfnError> {
    let mut stats = ConcretizeStats::default();
    if abstract_trace.is_empty() {
        return Ok((ConcretizeOutcome::Unknown, stats));
    }
    let depth = abstract_trace.num_cycles();
    // Guidance: each abstract step's state and input cubes merged. All
    // abstract-model signals are signals of the original design (pseudo-input
    // literals become register constraints).
    let mut guidance: Vec<Cube> = Vec::with_capacity(depth);
    for step in abstract_trace.steps() {
        let mut cube = step.state.clone();
        if cube.merge(&step.inputs).is_err() {
            // State and input cubes of a well-formed trace are disjoint; a
            // conflict means the trace is internally inconsistent.
            return Ok((ConcretizeOutcome::Spurious, stats));
        }
        guidance.push(cube);
    }

    // Stage 1: guided random simulation — a few thousand packed patterns
    // along the corridor cost a fraction of one ATPG search.
    let mut survivors = Vec::new();
    if options.sim.batches > 0 {
        let (found, rstats) = random_concretize(netlist, target, &guidance, &options.sim)
            .map_err(|e| RfnError::at(crate::Phase::Concretize, e))?;
        stats.random_batches = rstats.batches;
        stats.random_patterns = rstats.patterns;
        stats.random_hits = rstats.hits;
        stats.random_gate_evals = rstats.gate_evals;
        survivors = rstats.survivors;
        if let Some(trace) = found {
            // The hitting lane was already replayed (and thereby validated)
            // on the scalar reference simulator during trace reconstruction.
            stats.random_falsified = true;
            return Ok((ConcretizeOutcome::Falsified(trace), stats));
        }
    }

    // Stage 2: trace-guided sequential ATPG, attacking the frames with the
    // fewest random survivors — the hard frames — first.
    let mut atpg_options = options.atpg.clone();
    if options.bias_frame_order && atpg_options.frame_priority.is_empty() {
        atpg_options.frame_priority = survivors;
    }
    let atpg = SequentialAtpg::new(netlist, atpg_options)
        .map_err(|e| RfnError::at(crate::Phase::Concretize, e))?;
    let (outcome, astats) = atpg.find_trace_with_stats(depth, target, &guidance);
    stats.atpg_backtracks = astats.backtracks;
    stats.atpg_decisions = astats.decisions;
    let outcome = match outcome {
        AtpgOutcome::Satisfiable(trace) => {
            if validate_trace_cube(netlist, target, &trace)? {
                ConcretizeOutcome::Falsified(trace)
            } else {
                // An invalid witness indicates an engine bug; refuse to
                // report a false falsification.
                debug_assert!(false, "ATPG witness failed concrete validation");
                ConcretizeOutcome::Unknown
            }
        }
        AtpgOutcome::Unsatisfiable => ConcretizeOutcome::Spurious,
        AtpgOutcome::Aborted => ConcretizeOutcome::Unknown,
    };
    Ok((outcome, stats))
}

/// Validates an error-trace cube by concrete simulation: unassigned inputs
/// are driven low, the design starts from reset, and the property signal
/// must assert at the final cycle.
///
/// Runs on the packed kernel (values broadcast to all lanes, lane 0 read
/// back).
///
/// Returns `Ok(true)` if the trace is a genuine counterexample.
///
/// # Errors
///
/// Returns a [`crate::Phase::Concretize`]-stamped error if the netlist
/// fails validation — a malformed design must surface, not silently skip
/// the replay check.
pub fn validate_trace(
    netlist: &Netlist,
    property: &Property,
    trace: &Trace,
) -> Result<bool, RfnError> {
    let target: Cube = [(property.signal, property.value)].into_iter().collect();
    validate_trace_cube(netlist, &target, trace)
}

/// Like [`validate_trace`] for an arbitrary target cube: every literal of
/// `target` must hold at the trace's final cycle under concrete simulation.
///
/// # Errors
///
/// Returns a [`crate::Phase::Concretize`]-stamped error if the netlist
/// fails validation.
pub fn validate_trace_cube(
    netlist: &Netlist,
    target: &Cube,
    trace: &Trace,
) -> Result<bool, RfnError> {
    if trace.is_empty() {
        return Ok(false);
    }
    let mut sim = PackedSim::new(netlist).map_err(|e| RfnError::at(crate::Phase::Concretize, e))?;
    sim.reset();
    // Registers with unknown reset values take the trace's word for their
    // initial value (any concrete value is a legal reset).
    for (s, v) in trace.steps()[0].state.iter() {
        if netlist.is_register(s) && netlist.register_init(s).is_none() {
            sim.set_all(s, Tv::from(v));
        }
    }
    for (i, step) in trace.steps().iter().enumerate() {
        // Drive every input: trace value if present, low otherwise.
        let mut inputs = Cube::new();
        for &pi in netlist.inputs() {
            let v = step.inputs.get(pi).unwrap_or(false);
            if inputs.insert(pi, v).is_err() {
                return Ok(false);
            }
        }
        if i + 1 < trace.num_cycles() {
            sim.step(&inputs);
        } else {
            sim.apply_cube(&inputs);
            sim.step_comb();
        }
    }
    Ok(target
        .iter()
        .all(|(s, v)| sim.lane(s, 0).to_bool() == Some(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{GateOp, SignalId, TraceStep};

    /// Design: watchdog fires 2 cycles after input `go` is held high while
    /// `arm` register (set by input `a`) is 1.
    fn design() -> (Netlist, Property, [SignalId; 4]) {
        let mut n = Netlist::new("d");
        let go = n.add_input("go");
        let a = n.add_input("a");
        let arm = n.add_register("arm", Some(false));
        n.set_register_next(arm, a).unwrap();
        let fire = n.add_gate("fire", GateOp::And, &[go, arm]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, fire]);
        n.set_register_next(w, wor).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p, [go, a, arm, w])
    }

    /// Abstract trace over N = {w} (arm is a pseudo-input): claims the
    /// watchdog fires with go=1, arm=1 at cycle 1.
    fn abstract_trace(go: SignalId, arm: SignalId, w: SignalId) -> Trace {
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(go, true), (arm, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t
    }

    #[test]
    fn guided_search_finds_real_trace() {
        let (n, p, [go, _, arm, w]) = design();
        let t = abstract_trace(go, arm, w);
        match concretize(&n, &p, &t, &ConcretizeOptions::default()).unwrap() {
            ConcretizeOutcome::Falsified(trace) => {
                assert_eq!(trace.num_cycles(), 3);
                assert!(validate_trace(&n, &p, &trace).unwrap());
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    /// The same corridor is cheap enough for the random engine alone: with
    /// the ATPG stage disabled down to zero backtracks it still falsifies,
    /// and the stats prove the witness cost no ATPG work.
    #[test]
    fn random_engine_falsifies_without_atpg() {
        let (n, p, [go, _, arm, w]) = design();
        let t = abstract_trace(go, arm, w);
        let options = ConcretizeOptions::default();
        let (outcome, stats) = concretize_with_stats(&n, &p, &t, &options).unwrap();
        assert!(matches!(outcome, ConcretizeOutcome::Falsified(_)));
        assert!(stats.random_falsified, "random stage should win here");
        assert_eq!(stats.atpg_backtracks, 0);
        assert_eq!(stats.atpg_decisions, 0);
        assert!(stats.random_hits > 0);
        assert!(stats.random_patterns > 0);
    }

    /// With the random stage disabled the ATPG stage still does the job.
    #[test]
    fn atpg_stage_works_with_random_disabled() {
        let (n, p, [go, _, arm, w]) = design();
        let t = abstract_trace(go, arm, w);
        let mut options = ConcretizeOptions::default();
        options.sim.batches = 0;
        let (outcome, stats) = concretize_with_stats(&n, &p, &t, &options).unwrap();
        assert!(matches!(outcome, ConcretizeOutcome::Falsified(_)));
        assert!(!stats.random_falsified);
        assert_eq!(stats.random_patterns, 0);
    }

    #[test]
    fn infeasible_guidance_is_spurious() {
        let (n, p, [go, _, arm, w]) = design();
        // Claim the watchdog fires at cycle 1 already (impossible: arm resets
        // to 0, so fire=0 in cycle 0).
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(go, true), (arm, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let _ = arm;
        match concretize(&n, &p, &t, &ConcretizeOptions::default()).unwrap() {
            ConcretizeOutcome::Spurious => {}
            other => panic!("expected spurious, got {other:?}"),
        }
    }

    #[test]
    fn empty_trace_is_unknown() {
        let (n, p, _) = design();
        assert!(matches!(
            concretize(&n, &p, &Trace::new(), &ConcretizeOptions::default()).unwrap(),
            ConcretizeOutcome::Unknown
        ));
    }

    #[test]
    fn validate_rejects_wrong_traces() {
        let (n, p, [_, _, _, w]) = design();
        // A trace that never asserts the watchdog.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert!(!validate_trace(&n, &p, &t).unwrap());
        assert!(!validate_trace(&n, &p, &Trace::new()).unwrap());
    }

    #[test]
    fn validate_uses_unknown_resets_from_trace() {
        // Register with unknown reset: the trace may choose its value.
        let mut n = Netlist::new("x");
        let r = n.add_register("r", None);
        n.set_register_next(r, r).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "r1", r);
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(r, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert!(validate_trace(&n, &p, &t).unwrap());
    }

    /// Satellite fix: a malformed netlist must surface as a
    /// `Phase::Concretize`-stamped error instead of silently reporting the
    /// trace as invalid.
    #[test]
    fn validate_propagates_netlist_errors() {
        // Register with no next-state function: fails validation.
        let mut n = Netlist::new("bad");
        let r = n.add_register("r", Some(false));
        let p = Property::never(&n, "p", r);
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(r, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        match validate_trace(&n, &p, &t) {
            Err(crate::Error::Netlist {
                phase: crate::Phase::Concretize,
                ..
            }) => {}
            other => panic!("expected Concretize-phase netlist error, got {other:?}"),
        }
    }
}
