//! Step 3: searching for an error trace on the original design with
//! trace-guided sequential ATPG.

use rfn_atpg::{AtpgOptions, AtpgOutcome, SequentialAtpg};
use rfn_netlist::{Cube, Netlist, Property, Trace};
use rfn_sim::Simulator;

use crate::RfnError;

/// Result of a concretization attempt.
#[derive(Clone, Debug)]
pub enum ConcretizeOutcome {
    /// A real error trace was found and validated by concrete simulation.
    Falsified(Trace),
    /// The guided search proved no error trace exists *under the guidance
    /// constraints at this depth* — the abstract trace is spurious.
    Spurious,
    /// The search aborted on a resource limit; the abstract trace's status is
    /// unknown (treated like spurious by the RFN loop, which then refines).
    Unknown,
}

/// Tries to turn an abstract error trace into a real error trace of the
/// original design (the paper's Step 3).
///
/// The abstract trace provides both the search depth (the real shortest
/// error trace can only be longer) and per-cycle constraint cubes that guide
/// the sequential ATPG — including the trace's pseudo-input assignments,
/// which become register constraints on the original design.
///
/// Every `Falsified` trace has been replayed with concrete simulation before
/// being returned, so falsification is sound even though the search is
/// heuristic.
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize(
    netlist: &Netlist,
    property: &Property,
    abstract_trace: &Trace,
    options: &AtpgOptions,
) -> Result<ConcretizeOutcome, RfnError> {
    let target: Cube = [(property.signal, property.value)].into_iter().collect();
    concretize_cube(netlist, &target, abstract_trace, options)
}

/// Like [`concretize`], but with an arbitrary target cube checked at the
/// final cycle (the coverage-analysis mode targets coverage-state cubes).
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn concretize_cube(
    netlist: &Netlist,
    target: &Cube,
    abstract_trace: &Trace,
    options: &AtpgOptions,
) -> Result<ConcretizeOutcome, RfnError> {
    if abstract_trace.is_empty() {
        return Ok(ConcretizeOutcome::Unknown);
    }
    let depth = abstract_trace.num_cycles();
    let atpg = SequentialAtpg::new(netlist, options.clone())
        .map_err(|e| RfnError::at(crate::Phase::Concretize, e))?;
    // Guidance: each abstract step's state and input cubes merged. All
    // abstract-model signals are signals of the original design (pseudo-input
    // literals become register constraints).
    let mut guidance: Vec<Cube> = Vec::with_capacity(depth);
    for step in abstract_trace.steps() {
        let mut cube = step.state.clone();
        if cube.merge(&step.inputs).is_err() {
            // State and input cubes of a well-formed trace are disjoint; a
            // conflict means the trace is internally inconsistent.
            return Ok(ConcretizeOutcome::Spurious);
        }
        guidance.push(cube);
    }
    match atpg.find_trace(depth, target, &guidance) {
        AtpgOutcome::Satisfiable(trace) => {
            if validate_trace_cube(netlist, target, &trace) {
                Ok(ConcretizeOutcome::Falsified(trace))
            } else {
                // An invalid witness indicates an engine bug; refuse to
                // report a false falsification.
                debug_assert!(false, "ATPG witness failed concrete validation");
                Ok(ConcretizeOutcome::Unknown)
            }
        }
        AtpgOutcome::Unsatisfiable => Ok(ConcretizeOutcome::Spurious),
        AtpgOutcome::Aborted => Ok(ConcretizeOutcome::Unknown),
    }
}

/// Validates an error-trace cube by concrete simulation: unassigned inputs
/// are driven low, the design starts from reset, and the property signal
/// must assert at the final cycle.
///
/// Returns `true` if the trace is a genuine counterexample.
pub fn validate_trace(netlist: &Netlist, property: &Property, trace: &Trace) -> bool {
    let target: Cube = [(property.signal, property.value)].into_iter().collect();
    validate_trace_cube(netlist, &target, trace)
}

/// Like [`validate_trace`] for an arbitrary target cube: every literal of
/// `target` must hold at the trace's final cycle under concrete simulation.
pub fn validate_trace_cube(netlist: &Netlist, target: &Cube, trace: &Trace) -> bool {
    if trace.is_empty() {
        return false;
    }
    let Ok(mut sim) = Simulator::new(netlist) else {
        return false;
    };
    sim.reset();
    // Registers with unknown reset values take the trace's word for their
    // initial value (any concrete value is a legal reset).
    for (s, v) in trace.steps()[0].state.iter() {
        if netlist.is_register(s) && netlist.register_init(s).is_none() {
            sim.set(s, rfn_sim::Tv::from(v));
        }
    }
    for (i, step) in trace.steps().iter().enumerate() {
        // Drive every input: trace value if present, low otherwise.
        let mut inputs = Cube::new();
        for &pi in netlist.inputs() {
            let v = step.inputs.get(pi).unwrap_or(false);
            if inputs.insert(pi, v).is_err() {
                return false;
            }
        }
        if i + 1 < trace.num_cycles() {
            sim.step(&inputs);
        } else {
            sim.apply_cube(&inputs);
            sim.step_comb();
        }
    }
    target
        .iter()
        .all(|(s, v)| sim.value(s).to_bool() == Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{GateOp, SignalId, TraceStep};

    /// Design: watchdog fires 2 cycles after input `go` is held high while
    /// `arm` register (set by input `a`) is 1.
    fn design() -> (Netlist, Property, [SignalId; 4]) {
        let mut n = Netlist::new("d");
        let go = n.add_input("go");
        let a = n.add_input("a");
        let arm = n.add_register("arm", Some(false));
        n.set_register_next(arm, a).unwrap();
        let fire = n.add_gate("fire", GateOp::And, &[go, arm]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, fire]);
        n.set_register_next(w, wor).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p, [go, a, arm, w])
    }

    /// Abstract trace over N = {w} (arm is a pseudo-input): claims the
    /// watchdog fires with go=1, arm=1 at cycle 1.
    fn abstract_trace(go: SignalId, arm: SignalId, w: SignalId) -> Trace {
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(go, true), (arm, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t
    }

    #[test]
    fn guided_search_finds_real_trace() {
        let (n, p, [go, _, arm, w]) = design();
        let t = abstract_trace(go, arm, w);
        match concretize(&n, &p, &t, &AtpgOptions::default()).unwrap() {
            ConcretizeOutcome::Falsified(trace) => {
                assert_eq!(trace.num_cycles(), 3);
                assert!(validate_trace(&n, &p, &trace));
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_guidance_is_spurious() {
        let (n, p, [go, _, arm, w]) = design();
        // Claim the watchdog fires at cycle 1 already (impossible: arm resets
        // to 0, so fire=0 in cycle 0).
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(go, true), (arm, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let _ = arm;
        match concretize(&n, &p, &t, &AtpgOptions::default()).unwrap() {
            ConcretizeOutcome::Spurious => {}
            other => panic!("expected spurious, got {other:?}"),
        }
    }

    #[test]
    fn empty_trace_is_unknown() {
        let (n, p, _) = design();
        assert!(matches!(
            concretize(&n, &p, &Trace::new(), &AtpgOptions::default()).unwrap(),
            ConcretizeOutcome::Unknown
        ));
    }

    #[test]
    fn validate_rejects_wrong_traces() {
        let (n, p, [_, _, _, w]) = design();
        // A trace that never asserts the watchdog.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert!(!validate_trace(&n, &p, &t));
        assert!(!validate_trace(&n, &p, &Trace::new()));
    }

    #[test]
    fn validate_uses_unknown_resets_from_trace() {
        // Register with unknown reset: the trace may choose its value.
        let mut n = Netlist::new("x");
        let r = n.add_register("r", None);
        n.set_register_next(r, r).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "r1", r);
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(r, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert!(validate_trace(&n, &p, &t));
    }
}
