//! The session API: one fluent entry point for the engine portfolio and
//! coverage runs.
//!
//! [`VerifySession`] unifies the ways the tool is driven — the
//! [`Engine`](crate::Engine) lanes selected by [`EngineKind`] (the RFN
//! abstraction-refinement loop, the plain symbolic model checker, SAT
//! bounded model checking, or a race of all three) and
//! unreachable-coverage-state analysis (Table 2) — behind one builder:
//!
//! ```
//! use rfn_core::prelude::*;
//! use rfn_netlist::{Netlist, Property};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut n = Netlist::new("demo");
//! # let flag = n.add_register("flag", Some(false));
//! # n.set_register_next(flag, flag)?;
//! # n.validate()?;
//! # let p = Property::never(&n, "flag_low", flag);
//! let report = VerifySession::new(&n)
//!     .property(&p)
//!     .threads(2)
//!     .run()?;
//! assert!(report.all_proved());
//! # Ok(())
//! # }
//! ```
//!
//! Every property (and coverage set) is an independent job with its own BDD
//! managers; jobs run on a work-stealing pool of [`VerifySession::threads`]
//! workers. When a trace sink is attached ([`VerifySession::trace`]), each
//! job buffers its events into a private [`MemorySink`] and the session
//! flushes the buffers **in job order** after all jobs finish — the merged
//! stream (modulo timestamps) is byte-identical at any thread count.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rfn_govern::Budget;
use rfn_mc::{verify_plain_group, GroupOptions, PlainOptions, PlainReport, PlainVerdict};
use rfn_netlist::{CoverageSet, Netlist, Property, PropertyGroups};
use rfn_trace::{merge_streams, Event, FanoutSink, MemorySink, StderrSink, TraceCtx, TraceSink};

use crate::engine::{build_engines, run_engines};
use crate::{
    analyze_coverage, parallel_map, verify_bmc_group, BmcOptions, BmcReport, BmcVerdict,
    CoverageOptions, CoverageReport, DesignIdentity, EngineKind, RfnError, RfnOptions, RfnStats,
    Verdict,
};

/// Default Jaccard COI-overlap threshold for property grouping.
pub const DEFAULT_GROUP_THRESHOLD: f64 = 0.5;

/// The outcome of one property job.
#[derive(Clone, Debug)]
pub struct PropertyResult {
    /// The property that was verified.
    pub property: Property,
    /// The engine-independent verdict.
    pub verdict: Verdict,
    /// RFN run statistics, whenever the RFN lane ran.
    pub stats: Option<RfnStats>,
    /// The baseline report, whenever the plain-MC lane ran.
    pub plain: Option<PlainReport>,
    /// The bounded-model-checking report, whenever the BMC lane ran.
    pub bmc: Option<BmcReport>,
}

/// Everything a session run produced, in submission order.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// One result per property, in the order they were added.
    pub results: Vec<PropertyResult>,
    /// One report per coverage set, in the order they were added.
    pub coverage: Vec<CoverageReport>,
    /// The property groups the session scheduled, as indices into
    /// [`SessionReport::results`], in group order. Every property appears in
    /// exactly one group; with grouping disabled (or an engine lane that
    /// does not group) every group is a singleton.
    pub groups: Vec<Vec<usize>>,
}

impl SessionReport {
    /// Whether every property was proved (vacuously true with none).
    pub fn all_proved(&self) -> bool {
        self.results
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Proved))
    }

    /// The CLI's exit-code convention: `0` all proved, `1` some property
    /// falsified (outranks everything), `3` some property inconclusive.
    pub fn worst_exit_code(&self) -> u8 {
        let mut worst = 0u8;
        for r in &self.results {
            let code = match r.verdict {
                Verdict::Proved => 0,
                Verdict::Falsified { .. } => 1,
                Verdict::Inconclusive { .. } => 3,
            };
            worst = match (worst, code) {
                (1, _) | (_, 1) => 1,
                (3, _) | (_, 3) => 3,
                _ => code,
            };
        }
        worst
    }
}

/// Builder for a verification session over one netlist.
///
/// See the module-level docs above for an example and the event-determinism
/// contract.
#[derive(Clone)]
pub struct VerifySession<'n> {
    netlist: &'n Netlist,
    engine: EngineKind,
    properties: Vec<Property>,
    coverage_sets: Vec<CoverageSet>,
    options: RfnOptions,
    plain_options: PlainOptions,
    bmc_options: BmcOptions,
    coverage_options: CoverageOptions,
    budget: Option<Budget>,
    anchor_at_run: bool,
    threads: usize,
    grouping: bool,
    group_threshold: f64,
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for VerifySession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifySession")
            .field("netlist", &self.netlist.name())
            .field("engine", &self.engine)
            .field("properties", &self.properties.len())
            .field("coverage_sets", &self.coverage_sets.len())
            .field("threads", &self.threads)
            .field("traced", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl<'n> VerifySession<'n> {
    /// Starts a session on the given design with default options: the RFN
    /// engine, one worker thread, no properties, no tracing.
    pub fn new(netlist: &'n Netlist) -> Self {
        VerifySession {
            netlist,
            engine: EngineKind::Rfn,
            properties: Vec::new(),
            coverage_sets: Vec::new(),
            options: RfnOptions::default(),
            plain_options: PlainOptions::default(),
            bmc_options: BmcOptions::default(),
            coverage_options: CoverageOptions::default(),
            budget: None,
            anchor_at_run: false,
            threads: 1,
            grouping: true,
            group_threshold: DEFAULT_GROUP_THRESHOLD,
            sink: None,
        }
    }

    /// Adds one property to the portfolio.
    #[must_use]
    pub fn property(mut self, property: &Property) -> Self {
        self.properties.push(property.clone());
        self
    }

    /// Adds several properties to the portfolio.
    #[must_use]
    pub fn properties(mut self, properties: impl IntoIterator<Item = Property>) -> Self {
        self.properties.extend(properties);
        self
    }

    /// Adds a coverage set; its analysis runs as one more portfolio job.
    #[must_use]
    pub fn coverage_set(mut self, set: &CoverageSet) -> Self {
        self.coverage_sets.push(set.clone());
        self
    }

    /// Selects the engine lane(s) for the property jobs (coverage jobs
    /// always use the RFN-style analysis).
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets one wall-clock budget **shared by every job** (RFN, plain and
    /// coverage): the clock starts when [`VerifySession::run`] is called and
    /// all jobs race the same deadline, regardless of when the pool gets to
    /// them. (Each job used to restart the clock for itself, so a portfolio
    /// could spend `jobs × limit` in total.)
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.budget = Some(
            self.budget
                .take()
                .unwrap_or_default()
                .with_wall_clock(limit),
        );
        self.anchor_at_run = true;
        self
    }

    /// Sets the shared resource budget of every job. The budget keeps its
    /// own anchor (its clock is **not** restarted at [`VerifySession::run`]);
    /// its cancellation token, ceilings and quotas are shared by all jobs.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self.anchor_at_run = false;
        self
    }

    /// Sets the checkpoint directory for the RFN jobs: each property
    /// snapshots its refinement loop to `<dir>/<property>.ckpt.json` after
    /// every completed iteration.
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.options.checkpoint_dir = Some(dir.into());
        self
    }

    /// When `true`, RFN jobs resume from their snapshots (if present) in the
    /// checkpoint directory instead of starting from scratch.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.options.resume = resume;
        self
    }

    /// Keys warm-start store entries and checkpoint design validation by the
    /// loaded design's canonical identity (a file content hash for designs
    /// loaded from `.aag`/`.aig`/`.cnf` files) instead of the netlist's
    /// structural hash. Drivers that load through
    /// [`DesignSource::load`](crate::DesignSource::load) should always pass
    /// the returned identity here, so a renamed file keeps its warm starts
    /// and checkpoints while a changed file never inherits stale ones.
    #[must_use]
    pub fn design_identity(mut self, identity: &DesignIdentity) -> Self {
        self.options.design_hash = Some(identity.hash);
        self
    }

    /// Sets the worker-thread count for the portfolio (default 1; results
    /// and the merged event stream do not depend on this).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables COI-overlap property grouping (default on).
    ///
    /// When on and the engine lane is [`EngineKind::PlainMc`] or
    /// [`EngineKind::Bmc`], properties whose register cones of influence
    /// overlap (Jaccard at least [`VerifySession::group_threshold`]) share
    /// one job: one model build, one reachability fixpoint (or one
    /// incremental SAT unrolling), one warm-start store entry. Verdicts and
    /// falsification depths are identical to ungrouped runs; singleton
    /// groups take the exact per-property path. The RFN and race lanes
    /// always run per property.
    #[must_use]
    pub fn grouping(mut self, grouping: bool) -> Self {
        self.grouping = grouping;
        self
    }

    /// Sets the Jaccard COI-overlap threshold for grouping (default
    /// [`DEFAULT_GROUP_THRESHOLD`]). Properties join a group when their
    /// register-COI Jaccard similarity with the group's leader reaches the
    /// threshold; above `1.0` every property is a singleton.
    #[must_use]
    pub fn group_threshold(mut self, threshold: f64) -> Self {
        self.group_threshold = threshold;
        self
    }

    /// Sets the stderr verbosity (routed through a [`StderrSink`], so the
    /// human log is the same event stream as the structured trace).
    #[must_use]
    pub fn verbosity(mut self, verbosity: u8) -> Self {
        self.options.verbosity = verbosity;
        self
    }

    /// Attaches a structured-event sink (e.g. a
    /// [`JsonlSink`](rfn_trace::JsonlSink) behind `--trace-out`). Events are
    /// buffered per job and flushed in job order after the run.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Replaces the RFN options wholesale (the builder's `time_limit` /
    /// `verbosity` apply on top if called afterwards).
    #[must_use]
    pub fn rfn_options(mut self, options: RfnOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the plain-MC options wholesale.
    #[must_use]
    pub fn plain_options(mut self, options: PlainOptions) -> Self {
        self.plain_options = options;
        self
    }

    /// Replaces the BMC options wholesale.
    #[must_use]
    pub fn bmc_options(mut self, options: BmcOptions) -> Self {
        self.bmc_options = options;
        self
    }

    /// Replaces the coverage options wholesale.
    #[must_use]
    pub fn coverage_options(mut self, options: CoverageOptions) -> Self {
        self.coverage_options = options;
        self
    }

    /// Runs every job and returns the collected report.
    ///
    /// # Errors
    ///
    /// Returns the first structural error in job order; capacity exhaustion
    /// is reported through verdicts, never as an `Err`.
    pub fn run(mut self) -> Result<SessionReport, RfnError> {
        // One budget for the whole portfolio: every job clones the same
        // deadline, ceilings and cancellation token.
        if let Some(budget) = self.budget.take() {
            let shared = if self.anchor_at_run {
                budget.restarted()
            } else {
                budget
            };
            self.options.common.budget = shared.clone();
            // Keep the plain engine's configured node ceiling; share the
            // deadline, memory ceiling and cancellation token.
            let plain_ceiling = self.plain_options.node_limit();
            self.plain_options = self
                .plain_options
                .with_budget(shared.clone().with_node_ceiling(plain_ceiling));
            self.bmc_options.common.budget = shared.clone();
            self.coverage_options.common.budget = shared;
        }
        let n_props = self.properties.len();
        let buffering = self.sink.is_some();

        // Group jobs: COI-overlap clusters for the lanes that can share a
        // model, singletons everywhere else. Clustering is deterministic,
        // so the job partition (and thus the merged event stream) does not
        // depend on the thread count.
        let use_groups = self.grouping
            && n_props > 1
            && matches!(self.engine, EngineKind::PlainMc | EngineKind::Bmc);
        let groups: Vec<(Vec<usize>, String)> = if use_groups {
            PropertyGroups::cluster(self.netlist, &self.properties, self.group_threshold)
                .groups()
                .iter()
                .map(|g| (g.members().to_vec(), g.key(&self.properties)))
                .collect()
        } else {
            (0..n_props)
                .map(|i| (vec![i], self.properties[i].name.clone()))
                .collect()
        };
        let n_groups = groups.len();
        let n_jobs = n_groups + self.coverage_sets.len();

        enum JobOut {
            Props(Vec<(usize, PropertyResult)>),
            Cov(Box<CoverageReport>),
        }

        let jobs: Vec<(Result<JobOut, RfnError>, Vec<Event>)> =
            parallel_map(n_jobs, self.threads, |i| {
                let mem = Arc::new(MemorySink::new());
                let ctx = self.job_ctx(&mem, buffering);
                let out = if i < n_groups {
                    let (members, key) = &groups[i];
                    if let [pi] = members[..] {
                        // Singleton groups keep the exact per-property path.
                        self.run_property(&self.properties[pi], ctx)
                            .map(|r| JobOut::Props(vec![(pi, r)]))
                    } else {
                        self.run_group(members, key, ctx).map(JobOut::Props)
                    }
                } else {
                    let mut opts = self.coverage_options.clone();
                    opts.common.trace = ctx;
                    analyze_coverage(self.netlist, &self.coverage_sets[i - n_groups], &opts)
                        .map(|r| JobOut::Cov(Box::new(r)))
                };
                let events = if buffering { mem.take() } else { Vec::new() };
                (out, events)
            });

        // Flush buffered events in job order, so the merged stream is
        // independent of the thread count. Then surface the first error.
        let mut outs = Vec::with_capacity(n_jobs);
        let mut buffers = Vec::with_capacity(n_jobs);
        for (out, events) in jobs {
            outs.push(out);
            buffers.push(events);
        }
        if let Some(sink) = &self.sink {
            for event in merge_streams(buffers) {
                sink.emit(&event);
            }
        }

        // Scatter per-property results back into submission order.
        let mut slots: Vec<Option<PropertyResult>> = (0..n_props).map(|_| None).collect();
        let mut report = SessionReport {
            groups: groups.into_iter().map(|(members, _)| members).collect(),
            ..SessionReport::default()
        };
        for out in outs {
            match out? {
                JobOut::Props(results) => {
                    for (pi, r) in results {
                        slots[pi] = Some(r);
                    }
                }
                JobOut::Cov(r) => report.coverage.push(*r),
            }
        }
        report.results = slots
            .into_iter()
            .map(|s| s.expect("every property is in exactly one group"))
            .collect();
        Ok(report)
    }

    /// The event context for one job: a private memory buffer when a session
    /// sink is attached (fanned out to stderr when verbose), otherwise
    /// disabled — the engines then handle `verbosity` themselves.
    fn job_ctx(&self, mem: &Arc<MemorySink>, buffering: bool) -> TraceCtx {
        if !buffering {
            return TraceCtx::disabled();
        }
        if self.options.verbosity > 0 {
            TraceCtx::new(Arc::new(FanoutSink::new(vec![
                mem.clone() as Arc<dyn TraceSink>,
                Arc::new(StderrSink::new()),
            ])))
        } else {
            TraceCtx::new(mem.clone() as Arc<dyn TraceSink>)
        }
    }

    /// Runs one non-singleton group job: the group engines share a model,
    /// reached set or SAT unrolling across all members and return one
    /// per-property report each, which this maps onto the same
    /// [`PropertyResult`]s (and verdicts) the per-property lanes produce.
    fn run_group(
        &self,
        members: &[usize],
        key: &str,
        ctx: TraceCtx,
    ) -> Result<Vec<(usize, PropertyResult)>, RfnError> {
        let props: Vec<Property> = members
            .iter()
            .map(|&pi| self.properties[pi].clone())
            .collect();
        match self.engine {
            EngineKind::PlainMc => {
                let mut plain = self.plain_options.clone();
                plain.common.trace = ctx;
                let mut opts = GroupOptions::default().with_plain(plain);
                if let Some(dir) = &self.options.order_cache_dir {
                    opts = opts.with_store_dir(dir.clone());
                }
                if let Some(hash) = self.options.design_hash {
                    opts = opts.with_design_hash(hash);
                }
                let reports = verify_plain_group(self.netlist, &props, key, &opts)?;
                Ok(members
                    .iter()
                    .zip(props.into_iter().zip(reports))
                    .map(|(&pi, (property, report))| {
                        let verdict = match report.verdict {
                            PlainVerdict::Proved => Verdict::Proved,
                            PlainVerdict::Falsified { depth } => {
                                Verdict::Falsified { trace: None, depth }
                            }
                            PlainVerdict::OutOfCapacity => Verdict::Inconclusive {
                                reason: "plain model checking out of capacity".to_owned(),
                            },
                        };
                        let result = PropertyResult {
                            property,
                            verdict,
                            stats: None,
                            plain: Some(report),
                            bmc: None,
                        };
                        (pi, result)
                    })
                    .collect())
            }
            EngineKind::Bmc => {
                let mut opts = self.bmc_options.clone();
                opts.common.trace = ctx;
                let reports = verify_bmc_group(self.netlist, &props, key, &opts)?;
                Ok(members
                    .iter()
                    .zip(props.into_iter().zip(reports))
                    .map(|(&pi, (property, report))| {
                        let verdict = match report.verdict {
                            BmcVerdict::Falsified { depth } => Verdict::Falsified {
                                trace: report.trace.clone(),
                                depth,
                            },
                            BmcVerdict::BoundedSafe { depth } => Verdict::Inconclusive {
                                reason: format!("no counterexample up to bounded depth {depth}"),
                            },
                            BmcVerdict::OutOfBudget { depth, ref reason } => {
                                Verdict::Inconclusive {
                                    reason: match depth {
                                        Some(d) => format!("{reason} after completing depth {d}"),
                                        None => format!("{reason} before completing any depth"),
                                    },
                                }
                            }
                        };
                        let result = PropertyResult {
                            property,
                            verdict,
                            stats: None,
                            plain: None,
                            bmc: Some(report),
                        };
                        (pi, result)
                    })
                    .collect())
            }
            EngineKind::Rfn | EngineKind::Race => {
                unreachable!("grouping only schedules the plain-MC and BMC lanes")
            }
        }
    }

    fn run_property(&self, property: &Property, ctx: TraceCtx) -> Result<PropertyResult, RfnError> {
        let mut lanes = build_engines(
            self.engine,
            self.netlist,
            property,
            &self.options,
            &self.plain_options,
            &self.bmc_options,
        );
        let outcome = run_engines(&mut lanes, &ctx)?;
        Ok(PropertyResult {
            property: property.clone(),
            verdict: outcome.verdict,
            stats: outcome.stats,
            plain: outcome.plain,
            bmc: outcome.bmc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;
    use rfn_trace::to_jsonl;

    fn two_property_design() -> (Netlist, Property, Property) {
        let mut n = Netlist::new("sess");
        // `safe` can never rise; `unsafe` latches once the counter fills.
        let safe = n.add_register("safe", Some(false));
        n.set_register_next(safe, safe).unwrap();
        let b = n.add_register("b", Some(false));
        let nb = n.add_gate("nb", GateOp::Not, &[b]);
        n.set_register_next(b, nb).unwrap();
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, b]);
        n.set_register_next(w, wor).unwrap();
        n.validate().unwrap();
        let p_safe = Property::never(&n, "safe_low", safe);
        let p_unsafe = Property::never(&n, "w_low", w);
        (n, p_safe, p_unsafe)
    }

    #[test]
    fn session_runs_a_mixed_portfolio() {
        let (n, p_safe, p_unsafe) = two_property_design();
        let report = VerifySession::new(&n)
            .property(&p_safe)
            .property(&p_unsafe)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.results.len(), 2);
        assert!(matches!(report.results[0].verdict, Verdict::Proved));
        assert!(matches!(
            report.results[1].verdict,
            Verdict::Falsified { trace: Some(_), .. }
        ));
        assert_eq!(report.worst_exit_code(), 1);
        assert!(!report.all_proved());
    }

    #[test]
    fn plain_engine_reports_depths() {
        let (n, p_safe, p_unsafe) = two_property_design();
        let report = VerifySession::new(&n)
            .properties([p_safe, p_unsafe])
            .engine(EngineKind::PlainMc)
            .run()
            .unwrap();
        assert!(matches!(report.results[0].verdict, Verdict::Proved));
        assert!(matches!(
            report.results[1].verdict,
            Verdict::Falsified {
                trace: None,
                depth: 2
            }
        ));
        assert!(report.results[1].plain.is_some());
    }

    #[test]
    fn bmc_engine_agrees_with_plain_depths() {
        let (n, p_safe, p_unsafe) = two_property_design();
        let report = VerifySession::new(&n)
            .properties([p_safe, p_unsafe])
            .engine(EngineKind::Bmc)
            .run()
            .unwrap();
        // The safe property is only *bounded*-safe to BMC: inconclusive.
        assert!(matches!(
            report.results[0].verdict,
            Verdict::Inconclusive { .. }
        ));
        assert!(matches!(
            report.results[1].verdict,
            Verdict::Falsified {
                trace: Some(_),
                depth: 2
            }
        ));
        assert!(report.results[1].bmc.is_some());
    }

    #[test]
    fn race_takes_the_first_conclusive_lane() {
        let (n, p_safe, p_unsafe) = two_property_design();
        let report = VerifySession::new(&n)
            .properties([p_safe, p_unsafe])
            .engine(EngineKind::Race)
            .run()
            .unwrap();
        assert!(matches!(report.results[0].verdict, Verdict::Proved));
        assert!(matches!(
            report.results[1].verdict,
            Verdict::Falsified { .. }
        ));
        assert_eq!(report.worst_exit_code(), 1);
    }

    #[test]
    fn event_stream_is_identical_across_thread_counts() {
        let (n, p_safe, p_unsafe) = two_property_design();
        let run = |threads: usize| {
            let sink = Arc::new(MemorySink::new());
            VerifySession::new(&n)
                .property(&p_safe)
                .property(&p_unsafe)
                .threads(threads)
                .trace(sink.clone())
                .run()
                .unwrap();
            to_jsonl(&sink.take(), true)
        };
        let serial = run(1);
        assert!(serial.contains("\"name\":\"rfn\""));
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    /// A 2-bit saturating counter with detectors on values 1 and 2: both
    /// properties have the same register COI, so they group at any
    /// threshold up to 1.0.
    fn overlapping_design() -> (Netlist, Property, Property) {
        let mut n = Netlist::new("overlap");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let full = n.add_gate("full", GateOp::And, &[b0, b1]);
        let nb0 = n.add_gate("nb0", GateOp::Not, &[b0]);
        let t0 = n.add_gate("t0", GateOp::Or, &[nb0, full]);
        let inc1 = n.add_gate("inc1", GateOp::Xor, &[b1, b0]);
        let t1 = n.add_gate("t1", GateOp::Or, &[inc1, full]);
        n.set_register_next(b0, t0).unwrap();
        n.set_register_next(b1, t1).unwrap();
        let nb1 = n.add_gate("nb1", GateOp::Not, &[b1]);
        let at1 = n.add_gate("at1", GateOp::And, &[b0, nb1]);
        let at2 = n.add_gate("at2", GateOp::And, &[nb0, b1]);
        n.validate().unwrap();
        let p1 = Property::never(&n, "no_1", at1);
        let p2 = Property::never(&n, "no_2", at2);
        (n, p1, p2)
    }

    #[test]
    fn grouped_plain_session_matches_ungrouped_verdicts() {
        let (n, p1, p2) = overlapping_design();
        let grouped = VerifySession::new(&n)
            .properties([p1.clone(), p2.clone()])
            .engine(EngineKind::PlainMc)
            .run()
            .unwrap();
        assert_eq!(grouped.groups, vec![vec![0, 1]]);
        let ungrouped = VerifySession::new(&n)
            .properties([p1, p2])
            .engine(EngineKind::PlainMc)
            .grouping(false)
            .run()
            .unwrap();
        assert_eq!(ungrouped.groups, vec![vec![0], vec![1]]);
        for (g, u) in grouped.results.iter().zip(&ungrouped.results) {
            assert_eq!(format!("{:?}", g.verdict), format!("{:?}", u.verdict));
            assert!(g.plain.is_some());
        }
        assert!(matches!(
            grouped.results[0].verdict,
            Verdict::Falsified { depth: 1, .. }
        ));
        assert!(matches!(
            grouped.results[1].verdict,
            Verdict::Falsified { depth: 2, .. }
        ));
    }

    #[test]
    fn grouped_bmc_session_carries_traces() {
        let (n, p1, p2) = overlapping_design();
        let report = VerifySession::new(&n)
            .properties([p1, p2])
            .engine(EngineKind::Bmc)
            .run()
            .unwrap();
        assert_eq!(report.groups, vec![vec![0, 1]]);
        assert!(matches!(
            report.results[0].verdict,
            Verdict::Falsified {
                trace: Some(_),
                depth: 1
            }
        ));
        assert!(matches!(
            report.results[1].verdict,
            Verdict::Falsified {
                trace: Some(_),
                depth: 2
            }
        ));
        assert!(report.results.iter().all(|r| r.bmc.is_some()));
    }

    #[test]
    fn threshold_above_one_forces_singletons() {
        let (n, p1, p2) = overlapping_design();
        let report = VerifySession::new(&n)
            .properties([p1, p2])
            .engine(EngineKind::PlainMc)
            .group_threshold(1.1)
            .run()
            .unwrap();
        assert_eq!(report.groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn coverage_jobs_ride_in_the_same_session() {
        let (n, p_safe, _) = two_property_design();
        let b = n.find("b").unwrap();
        let w = n.find("w").unwrap();
        let set = CoverageSet::new("bw", [b, w]);
        let report = VerifySession::new(&n)
            .property(&p_safe)
            .coverage_set(&set)
            .run()
            .unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.coverage.len(), 1);
        assert_eq!(report.coverage[0].total_states, 4);
    }
}
