//! Parallel property portfolio: run independent verification jobs across a
//! pool of worker threads.
//!
//! Each RFN run (and each plain-MC baseline run) owns its private
//! [`rfn_bdd::BddManager`], so verification jobs over different properties
//! share no mutable state and parallelize embarrassingly. This module
//! provides the one primitive the portfolio needs: an ordered parallel map
//! with a work-stealing index, so results come back **in input order**
//! regardless of which worker finished first — the table harnesses and the
//! CLI stay byte-for-byte deterministic at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `job` to every index in `0..n` using up to `threads` worker
/// threads and returns the results in index order.
///
/// * `threads <= 1` (or `n <= 1`) degrades to a plain serial loop on the
///   calling thread — no pool, identical behavior to the pre-portfolio code.
/// * Jobs are claimed from a shared atomic counter, so a slow job never
///   blocks the remaining work from being picked up by idle workers.
/// * The output order is the input order, independent of scheduling.
///
/// # Panics
///
/// If a job panics the panic is propagated to the caller once all other
/// workers have finished (the behavior of [`std::thread::scope`]).
pub fn parallel_map<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = job(i);
                *slots[i].lock().expect("portfolio slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("portfolio slot poisoned")
                .expect("every index was claimed and completed")
        })
        .collect()
}

/// The worker count to use when the user does not specify one: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = parallel_map(64, 4, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn parallel_matches_serial_for_nontrivial_jobs() {
        // A compute-heavy job whose result depends only on the index.
        let f = |i: usize| -> u64 {
            let mut x = i as u64 + 1;
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        assert_eq!(parallel_map(9, 4, f), parallel_map(9, 1, f));
    }
}
