//! RFN: formal property verification by abstraction refinement with formal,
//! simulation and hybrid engines.
//!
//! This crate implements the complete verification loop of the DAC 2001
//! paper. Given a gate-level design and an unreachability property, [`Rfn`]
//! iterates the paper's four steps:
//!
//! 1. **Generate the abstract model** — a subcircuit induced by a growing
//!    register set; excluded registers are free pseudo-inputs
//!    ([`rfn_netlist::Abstraction`]).
//! 2. **Prove or find an abstract error trace** — BDD-based forward fixpoint
//!    with onion rings; on a target hit, the **hybrid BDD–ATPG engine**
//!    ([`hybrid_trace`]) reconstructs an error trace using pre-images on the
//!    *min-cut design* and combinational ATPG to lift min-cut cubes to
//!    no-cut cubes.
//! 3. **Concretize** — a staged cheap-to-expensive search of the original
//!    design, guided by the abstract trace (depth bound + per-cycle
//!    constraint cubes, [`concretize`]): bit-parallel guided random
//!    simulation first ([`rfn_sim::random_concretize`]), then sequential
//!    ATPG with its time-frame decision order biased by the random stage's
//!    per-cycle survivor counts.
//! 4. **Refine** — two-phase crucial-register identification: 3-valued
//!    simulation conflicts, then greedy ATPG minimization ([`refine`]).
//!
//! The loop is sound in both directions: `Proved` only ever comes from a
//! fixpoint on an over-approximating abstraction, and `Falsified` traces are
//! replayed concretely on the original design before being reported.
//!
//! The crate also implements the paper's second application,
//! **unreachable-coverage-state analysis** ([`analyze_coverage`]), together
//! with the BFS abstraction baseline it is compared against in Table 2
//! ([`bfs_coverage`]).
//!
//! # Example
//!
//! ```
//! use rfn_core::{Rfn, RfnOptions, RfnOutcome};
//! use rfn_netlist::{Netlist, GateOp, Property};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A flag that can never rise, plus an irrelevant counter.
//! let mut n = Netlist::new("demo");
//! let flag = n.add_register("flag", Some(false));
//! n.set_register_next(flag, flag)?;
//! let junk = n.add_register("junk", Some(false));
//! let nj = n.add_gate("nj", GateOp::Not, &[junk]);
//! n.set_register_next(junk, nj)?;
//! n.validate()?;
//!
//! let property = Property::never(&n, "flag_low", flag);
//! let outcome = Rfn::new(&n, &property, RfnOptions::default())?.run()?;
//! assert!(matches!(outcome, RfnOutcome::Proved { .. }));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmc;
mod checkpoint;
mod concretize;
mod coverage;
mod engine;
mod error;
mod hybrid;
mod portfolio;
mod refine;
mod rfn;
mod session;
mod source;

pub use bmc::{
    verify_bmc, verify_bmc_group, BmcOptions, BmcReport, BmcStats, BmcVerdict,
    DEFAULT_BMC_MAX_DEPTH,
};
pub use checkpoint::{LoopCheckpoint, CHECKPOINT_SCHEMA};
pub use concretize::{
    concretize, concretize_cube, concretize_cube_with_stats, concretize_with_stats, validate_trace,
    validate_trace_cube, ConcretizeOptions, ConcretizeOutcome, ConcretizeStats,
};
pub use coverage::{analyze_coverage, bfs_coverage, CoverageOptions, CoverageReport};
pub use engine::{
    build_engines, run_engines, BmcEngine, Engine, EngineKind, EngineOutcome, PlainMcEngine,
    RfnEngine, Verdict,
};
pub use error::{Error, Phase, RfnError};
pub use hybrid::{hybrid_trace, hybrid_traces, HybridOutcome, HybridStats};
pub use portfolio::{default_threads, parallel_map};
pub use refine::{refine, refine_with_roots, RefineOptions, RefineReport};
pub use rfn::{Rfn, RfnOptions, RfnOutcome, RfnStats};
pub use session::{PropertyResult, SessionReport, VerifySession, DEFAULT_GROUP_THRESHOLD};
pub use source::{DesignIdentity, DesignSource, LoadedDesign, BUILTIN_DESIGNS};

pub mod prelude {
    //! One-stop imports for driving the verifier.
    //!
    //! `use rfn_core::prelude::*;` brings in the session API, the engine
    //! entry points and option structs, the error type, and the trace and
    //! netlist types every driver needs. Binaries and benches should prefer
    //! this over enumerating a dozen paths.

    pub use crate::{
        analyze_coverage, bfs_coverage, default_threads, parallel_map, verify_bmc, verify_plain,
        BmcOptions, BmcReport, BmcVerdict, CommonOptions, CoverageOptions, CoverageReport,
        DesignIdentity, DesignSource, Engine, EngineKind, EngineOutcome, Error, LoadedDesign,
        LoopCheckpoint, Phase, PlainOptions, PlainReport, PlainVerdict, PropertyResult, Rfn,
        RfnError, RfnOptions, RfnOutcome, RfnStats, SessionReport, Verdict, VerifySession,
    };
    pub use rfn_govern::{Budget, CancelToken, Exhaustion, GovPhase};
    pub use rfn_netlist::{CoverageSet, Netlist, NetlistError, Property, Trace};
    pub use rfn_trace::{
        FanoutSink, JsonlSink, MemorySink, StderrSink, TimeBreakdown, TraceCtx, TraceSink,
    };
}

pub use rfn_govern::{Budget, CancelToken, Exhaustion, GovPhase};
pub use rfn_mc::{verify_plain, CommonOptions, McError, PlainOptions, PlainReport, PlainVerdict};
