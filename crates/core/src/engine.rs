//! The uniform engine abstraction behind the session portfolio.
//!
//! Every way the tool can decide a property — the RFN
//! abstraction-refinement loop, plain symbolic model checking, and
//! SAT-based bounded model checking — is wrapped in a lane type
//! implementing the [`Engine`] trait. The session picks lanes with
//! [`build_engines`] (the only place an [`EngineKind`] is matched on) and
//! drives them with [`run_engines`], which runs a single lane inline or
//! races several against each other on scoped threads.
//!
//! In a race every lane gets a **child** of its own cancellation token, so
//! the first lane to reach a conclusive verdict can cancel the others
//! without touching the portfolio-wide token shared by sibling property
//! jobs. Lane events are buffered per lane and absorbed into the job's
//! context in fixed lane order, keeping the merged stream deterministic in
//! everything but the cancellation cut-off points.

use std::sync::Arc;
use std::thread;

use rfn_govern::{Budget, CancelToken};
use rfn_mc::{verify_plain, PlainOptions, PlainReport, PlainVerdict};
use rfn_netlist::{Netlist, Property, Trace};
use rfn_trace::{Event, MemorySink, TraceCtx, TraceSink};

use crate::{
    verify_bmc, BmcOptions, BmcReport, BmcVerdict, Rfn, RfnError, RfnOptions, RfnOutcome, RfnStats,
};

/// Which engine lane(s) a session property job runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The RFN abstraction-refinement loop (the paper's tool).
    #[default]
    Rfn,
    /// Plain symbolic model checking on the whole cone of influence (the
    /// Table 1 baseline).
    PlainMc,
    /// SAT-based bounded model checking with UNSAT-core abstraction.
    Bmc,
    /// All three lanes raced against each other; the first conclusive
    /// verdict wins and cancels the rest.
    Race,
}

/// An engine-independent verdict for one property.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds.
    Proved,
    /// The property fails at the given depth. RFN and BMC provide a
    /// validated counterexample trace; the plain engine reports the depth
    /// only.
    Falsified {
        /// The error trace, when the engine produces one.
        trace: Option<Trace>,
        /// Length of the shortest found error path, in cycles.
        depth: usize,
    },
    /// Limits were exhausted without a verdict.
    Inconclusive {
        /// Human-readable reason.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict decides the property (anything but
    /// [`Verdict::Inconclusive`]).
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, Verdict::Inconclusive { .. })
    }
}

/// What one engine lane produced: the uniform verdict plus whichever
/// engine-specific report the lane generates.
#[derive(Clone, Debug, Default)]
pub struct EngineOutcome {
    /// The engine-independent verdict.
    pub verdict: Verdict,
    /// RFN run statistics (RFN lane only).
    pub stats: Option<RfnStats>,
    /// The baseline report (plain-MC lane only).
    pub plain: Option<PlainReport>,
    /// The bounded-model-checking report (BMC lane only).
    pub bmc: Option<BmcReport>,
}

impl Default for Verdict {
    fn default() -> Self {
        Verdict::Inconclusive {
            reason: "engine did not run".to_owned(),
        }
    }
}

/// One verification lane: a property-deciding procedure the portfolio can
/// run or race uniformly, without knowing which engine it wraps.
///
/// The controller derives the budget it passes to [`Engine::run`] from
/// [`Engine::budget`]: unchanged when the lane runs alone, re-tokened with
/// a child cancellation token when lanes race (so a winner can cancel its
/// siblings without cancelling unrelated jobs that share the parent
/// token).
pub trait Engine: Send {
    /// Short lane name, used in trace events and inconclusive reasons.
    fn name(&self) -> &'static str;

    /// The lane's configured budget (deadline, ceilings, token).
    fn budget(&self) -> Budget;

    /// Runs the lane to a verdict under the given budget, emitting events
    /// into `ctx`.
    ///
    /// # Errors
    ///
    /// Structural errors only; capacity exhaustion is reported through
    /// [`Verdict::Inconclusive`].
    fn run(&mut self, budget: Budget, ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError>;
}

/// The RFN abstraction-refinement loop as a portfolio lane.
pub struct RfnEngine<'n> {
    netlist: &'n Netlist,
    property: Property,
    options: RfnOptions,
}

impl<'n> RfnEngine<'n> {
    /// Wraps an RFN run of `property` on `netlist` with the given options.
    pub fn new(netlist: &'n Netlist, property: &Property, options: RfnOptions) -> Self {
        RfnEngine {
            netlist,
            property: property.clone(),
            options,
        }
    }
}

impl Engine for RfnEngine<'_> {
    fn name(&self) -> &'static str {
        "rfn"
    }

    fn budget(&self) -> Budget {
        self.options.common.budget.clone()
    }

    fn run(&mut self, budget: Budget, ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
        let mut opts = self.options.clone();
        opts.common.budget = budget;
        opts.common.trace = ctx.clone();
        let outcome = Rfn::new(self.netlist, &self.property, opts)?.run()?;
        let (verdict, stats) = match outcome {
            RfnOutcome::Proved { stats } => (Verdict::Proved, stats),
            RfnOutcome::Falsified { trace, stats } => {
                let depth = trace.num_cycles();
                (
                    Verdict::Falsified {
                        trace: Some(trace),
                        depth,
                    },
                    stats,
                )
            }
            RfnOutcome::Inconclusive { reason, stats } => (Verdict::Inconclusive { reason }, stats),
        };
        Ok(EngineOutcome {
            verdict,
            stats: Some(stats),
            ..EngineOutcome::default()
        })
    }
}

/// Plain symbolic model checking as a portfolio lane.
pub struct PlainMcEngine<'n> {
    netlist: &'n Netlist,
    property: Property,
    options: PlainOptions,
}

impl<'n> PlainMcEngine<'n> {
    /// Wraps a plain-MC run of `property` on `netlist` with the given
    /// options.
    pub fn new(netlist: &'n Netlist, property: &Property, options: PlainOptions) -> Self {
        PlainMcEngine {
            netlist,
            property: property.clone(),
            options,
        }
    }
}

impl Engine for PlainMcEngine<'_> {
    fn name(&self) -> &'static str {
        "plain_mc"
    }

    fn budget(&self) -> Budget {
        self.options.common.budget.clone()
    }

    fn run(&mut self, budget: Budget, ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
        let mut opts = self.options.clone();
        opts.common.budget = budget;
        opts.common.trace = ctx.clone();
        let report = verify_plain(self.netlist, &self.property, &opts)?;
        let verdict = match report.verdict {
            PlainVerdict::Proved => Verdict::Proved,
            PlainVerdict::Falsified { depth } => Verdict::Falsified { trace: None, depth },
            PlainVerdict::OutOfCapacity => Verdict::Inconclusive {
                reason: "plain model checking out of capacity".to_owned(),
            },
        };
        Ok(EngineOutcome {
            verdict,
            plain: Some(report),
            ..EngineOutcome::default()
        })
    }
}

/// SAT-based bounded model checking as a portfolio lane.
pub struct BmcEngine<'n> {
    netlist: &'n Netlist,
    property: Property,
    options: BmcOptions,
}

impl<'n> BmcEngine<'n> {
    /// Wraps a BMC run of `property` on `netlist` with the given options.
    pub fn new(netlist: &'n Netlist, property: &Property, options: BmcOptions) -> Self {
        BmcEngine {
            netlist,
            property: property.clone(),
            options,
        }
    }
}

impl Engine for BmcEngine<'_> {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn budget(&self) -> Budget {
        self.options.common.budget.clone()
    }

    fn run(&mut self, budget: Budget, ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
        let mut opts = self.options.clone();
        opts.common.budget = budget;
        opts.common.trace = ctx.clone();
        let report = verify_bmc(self.netlist, &self.property, &opts)?;
        let verdict = match report.verdict {
            BmcVerdict::Falsified { depth } => Verdict::Falsified {
                trace: report.trace.clone(),
                depth,
            },
            BmcVerdict::BoundedSafe { depth } => Verdict::Inconclusive {
                reason: format!("no counterexample up to bounded depth {depth}"),
            },
            BmcVerdict::OutOfBudget { depth, ref reason } => Verdict::Inconclusive {
                reason: match depth {
                    Some(d) => format!("{reason} after completing depth {d}"),
                    None => format!("{reason} before completing any depth"),
                },
            },
        };
        Ok(EngineOutcome {
            verdict,
            bmc: Some(report),
            ..EngineOutcome::default()
        })
    }
}

/// Builds the lane set for an [`EngineKind`] — the single place engine
/// kinds are matched on; everything downstream handles lanes uniformly
/// through the [`Engine`] trait.
pub fn build_engines<'n>(
    kind: EngineKind,
    netlist: &'n Netlist,
    property: &Property,
    rfn: &RfnOptions,
    plain: &PlainOptions,
    bmc: &BmcOptions,
) -> Vec<Box<dyn Engine + 'n>> {
    let mut lanes: Vec<Box<dyn Engine + 'n>> = Vec::new();
    if matches!(kind, EngineKind::Rfn | EngineKind::Race) {
        lanes.push(Box::new(RfnEngine::new(netlist, property, rfn.clone())));
    }
    if matches!(kind, EngineKind::PlainMc | EngineKind::Race) {
        lanes.push(Box::new(PlainMcEngine::new(
            netlist,
            property,
            plain.clone(),
        )));
    }
    if matches!(kind, EngineKind::Bmc | EngineKind::Race) {
        lanes.push(Box::new(BmcEngine::new(netlist, property, bmc.clone())));
    }
    lanes
}

/// Runs a lane set to one outcome.
///
/// A single lane runs inline on the caller's context. Several lanes race
/// on scoped threads: each gets a child of its own token, the first
/// conclusive lane (in lane order) wins and cancels its siblings, and
/// per-lane event buffers are absorbed into `ctx` in lane order. The
/// winning verdict is combined with every lane's engine-specific report;
/// when no lane concludes, the reasons are joined into one.
///
/// # Errors
///
/// The first lane error in lane order, after all lanes have stopped.
pub fn run_engines(
    engines: &mut [Box<dyn Engine + '_>],
    ctx: &TraceCtx,
) -> Result<EngineOutcome, RfnError> {
    if engines.len() == 1 {
        let lane = &mut engines[0];
        let budget = lane.budget();
        return lane.run(budget, &mut ctx.clone());
    }

    let mut race_span = ctx.span_with(
        "race",
        vec![("lanes".to_owned(), (engines.len() as u64).into())],
    );
    let buffering = ctx.is_enabled();
    // One child token per lane: cancelling it stops that lane only, and
    // never propagates up into the shared portfolio token.
    let tokens: Vec<CancelToken> = engines
        .iter()
        .map(|lane| lane.budget().token().child())
        .collect();

    type LaneResult = (&'static str, Result<EngineOutcome, RfnError>, Vec<Event>);
    let results: Vec<LaneResult> = thread::scope(|scope| {
        let tokens = &tokens;
        let handles: Vec<_> = engines
            .iter_mut()
            .enumerate()
            .map(|(i, lane)| {
                scope.spawn(move || {
                    let mem = Arc::new(MemorySink::new());
                    let mut lane_ctx = if buffering {
                        TraceCtx::new(mem.clone() as Arc<dyn TraceSink>)
                    } else {
                        TraceCtx::disabled()
                    };
                    let budget = lane.budget().with_cancel_token(tokens[i].clone());
                    let name = lane.name();
                    let out = lane.run(budget, &mut lane_ctx);
                    if matches!(&out, Ok(o) if o.verdict.is_conclusive()) {
                        for (j, token) in tokens.iter().enumerate() {
                            if j != i {
                                token.cancel();
                            }
                        }
                    }
                    (name, out, mem.take())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine lane panicked"))
            .collect()
    });

    let mut winner: Option<(&'static str, Verdict)> = None;
    let mut reasons = Vec::new();
    let mut first_err = None;
    let mut merged = EngineOutcome::default();
    for (name, out, events) in results {
        ctx.absorb(events);
        match out {
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Ok(out) => {
                merged.stats = merged.stats.or(out.stats);
                merged.plain = merged.plain.or(out.plain);
                merged.bmc = merged.bmc.or(out.bmc);
                match out.verdict {
                    Verdict::Inconclusive { reason } => reasons.push(format!("{name}: {reason}")),
                    verdict => {
                        if winner.is_none() {
                            winner = Some((name, verdict));
                        }
                    }
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    match winner {
        Some((name, verdict)) => {
            race_span.record("winner", name);
            merged.verdict = verdict;
        }
        None => {
            race_span.record("winner", "none");
            merged.verdict = Verdict::Inconclusive {
                reason: reasons.join("; "),
            };
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Concludes after a short delay and records when it did.
    struct Quick {
        budget: Budget,
        won_at: Arc<Mutex<Option<Instant>>>,
    }

    impl Engine for Quick {
        fn name(&self) -> &'static str {
            "quick"
        }
        fn budget(&self) -> Budget {
            self.budget.clone()
        }
        fn run(&mut self, _budget: Budget, _ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
            thread::sleep(Duration::from_millis(30));
            *self.won_at.lock().unwrap() = Some(Instant::now());
            Ok(EngineOutcome {
                verdict: Verdict::Proved,
                ..EngineOutcome::default()
            })
        }
    }

    /// Never concludes on its own: polls its budget every millisecond and
    /// yields only when cooperatively cancelled.
    struct Stubborn {
        budget: Budget,
    }

    impl Engine for Stubborn {
        fn name(&self) -> &'static str {
            "stubborn"
        }
        fn budget(&self) -> Budget {
            self.budget.clone()
        }
        fn run(&mut self, budget: Budget, _ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
            let start = Instant::now();
            while budget.check().is_ok() {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "lane was never cancelled"
                );
                thread::sleep(Duration::from_millis(1));
            }
            Ok(EngineOutcome {
                verdict: Verdict::Inconclusive {
                    reason: "cancelled".to_owned(),
                },
                ..EngineOutcome::default()
            })
        }
    }

    /// An inconclusive lane that stops immediately.
    struct GiveUp;

    impl Engine for GiveUp {
        fn name(&self) -> &'static str {
            "give_up"
        }
        fn budget(&self) -> Budget {
            Budget::unlimited()
        }
        fn run(&mut self, _budget: Budget, _ctx: &mut TraceCtx) -> Result<EngineOutcome, RfnError> {
            Ok(EngineOutcome {
                verdict: Verdict::Inconclusive {
                    reason: "out of ideas".to_owned(),
                },
                ..EngineOutcome::default()
            })
        }
    }

    #[test]
    fn race_winner_cancels_losers_within_the_grace_period() {
        let shared = Budget::unlimited();
        let won_at = Arc::new(Mutex::new(None));
        let mut lanes: Vec<Box<dyn Engine>> = vec![
            Box::new(Quick {
                budget: shared.clone(),
                won_at: won_at.clone(),
            }),
            Box::new(Stubborn {
                budget: shared.clone(),
            }),
        ];
        let out = run_engines(&mut lanes, &TraceCtx::disabled()).unwrap();
        let done = Instant::now();
        assert!(matches!(out.verdict, Verdict::Proved));
        // The stubborn lane must have been cancelled within the 500 ms
        // grace window after the quick lane concluded.
        let won_at = won_at.lock().unwrap().expect("quick lane won");
        assert!(
            done.duration_since(won_at) < Duration::from_millis(500),
            "losers outlived the winner by {:?}",
            done.duration_since(won_at)
        );
        // Cancelling the losers' child tokens must not leak into the shared
        // parent budget.
        assert!(!shared.token().is_cancelled());
    }

    #[test]
    fn race_with_no_conclusive_lane_joins_the_reasons() {
        let mut lanes: Vec<Box<dyn Engine>> = vec![Box::new(GiveUp), Box::new(GiveUp)];
        let out = run_engines(&mut lanes, &TraceCtx::disabled()).unwrap();
        let Verdict::Inconclusive { reason } = out.verdict else {
            panic!("expected inconclusive");
        };
        assert_eq!(reason, "give_up: out of ideas; give_up: out of ideas");
    }

    #[test]
    fn race_buffers_lane_events_in_lane_order() {
        let shared = Budget::unlimited();
        let won_at = Arc::new(Mutex::new(None));
        let mut lanes: Vec<Box<dyn Engine>> = vec![
            Box::new(Stubborn {
                budget: shared.clone(),
            }),
            Box::new(Quick {
                budget: shared,
                won_at,
            }),
        ];
        let sink = Arc::new(MemorySink::new());
        let ctx = TraceCtx::new(sink.clone() as Arc<dyn TraceSink>);
        let out = run_engines(&mut lanes, &ctx).unwrap();
        assert!(matches!(out.verdict, Verdict::Proved));
        // The race span is recorded with the winner's lane name.
        let events = sink.take();
        assert!(!events.is_empty());
    }
}
