//! SAT-based bounded model checking with UNSAT-core abstraction refinement.
//!
//! The third engine class of the portfolio, complementing the BDD-bound
//! formal lanes: the property's cone of influence is time-frame unrolled
//! into one incremental [`Solver`](rfn_sat::Solver) and the bad state is
//! checked at depth `k = 0, 1, 2, …`. Following the single-instance
//! incremental formulation of proof-based abstraction (Een, Mishchenko &
//! Amla, arXiv:1008.2021), every register's reset and transition clauses
//! are guarded by a per-register *activation literal*, so an abstraction —
//! a register subset — is selected per solver call purely through
//! assumptions:
//!
//! 1. solve depth `k` under the **abstract** model (only the refined
//!    registers activated; the rest are free cut points). UNSAT proves
//!    depth `k` safe outright, because freeing registers only adds
//!    behaviour.
//! 2. on abstract SAT, re-solve under the **concrete** model (every
//!    activation assumed). SAT yields a counterexample, which is replayed
//!    through [`validate_trace`] before being reported — a mismatch is an
//!    engine bug and fails loudly as [`Error::Witness`](crate::Error).
//!    UNSAT proves depth `k` safe, and the failed-assumption core names
//!    the activation literals — the registers — whose behaviour refuted
//!    the abstract counterexample; they join the abstraction before the
//!    loop advances to `k + 1`.
//!
//! The solver polls the shared [`Budget`] at propagation and restart
//! boundaries, so a portfolio controller can cancel the lane
//! cooperatively; the loop itself re-checks the budget (including an
//! optional [`GovPhase::Bmc`] quota) between depths.

use std::time::{Duration, Instant};

use rfn_govern::{Budget, Exhaustion, GovPhase};
use rfn_mc::CommonOptions;
use rfn_netlist::{Coi, Netlist, Property, SignalId, Trace, TraceStep};
use rfn_sat::{Lit, SolveResult, Solver, SolverStats, Term, Unroller};
use rfn_trace::TraceCtx;

use crate::{validate_trace, Phase, RfnError};

/// Default depth bound of the BMC loop: 30× the deepest bundled bug
/// (the processor's ≈30-cycle stall violation), while keeping a
/// standalone run on a safe design down to seconds even under an
/// unlimited budget — solver effort per frame grows with the clause
/// database, so total work is superlinear in the bound. Raise it with
/// [`BmcOptions::with_max_depth`] for deeper hunts.
pub const DEFAULT_BMC_MAX_DEPTH: usize = 1 << 10;

/// Configuration for [`verify_bmc`].
#[derive(Clone, Debug)]
pub struct BmcOptions {
    /// The budget and trace context shared with every other engine (see
    /// [`CommonOptions`]). The solver polls the budget at propagation and
    /// restart boundaries; the depth loop additionally honours a
    /// [`GovPhase::Bmc`] quota. The trace context wraps each run in a
    /// `bmc` span with per-depth `bmc.frame` and per-refinement
    /// `bmc.refine` points.
    pub common: CommonOptions,
    /// Deepest time frame to check before giving up
    /// ([`DEFAULT_BMC_MAX_DEPTH`] by default).
    pub max_depth: usize,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            common: CommonOptions::default(),
            max_depth: DEFAULT_BMC_MAX_DEPTH,
        }
    }
}

impl BmcOptions {
    /// Installs a shared resource budget (replacing any previous one).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.common = self.common.with_budget(budget);
        self
    }

    /// Sets the wall-clock limit (a view over the shared budget; the
    /// deadline is re-anchored at this call).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.common = self.common.with_time_limit(limit);
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.common = self.common.with_trace(trace);
        self
    }

    /// Sets the depth bound.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }
}

/// How a BMC run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcVerdict {
    /// The property fails: a validated counterexample reaches the bad
    /// state at time frame `depth` (the trace has `depth + 1` cycles).
    Falsified {
        /// First failing time frame.
        depth: usize,
    },
    /// Every depth up to the configured bound is safe. This is *not* a
    /// proof of the property — only that no counterexample of length
    /// `max_depth` or shorter exists.
    BoundedSafe {
        /// Deepest frame proved free of counterexamples.
        depth: usize,
    },
    /// The budget ran out (or the lane was cancelled) before the bound.
    OutOfBudget {
        /// Deepest frame fully proved safe before exhaustion (`None` if
        /// not even frame 0 completed).
        depth: Option<usize>,
        /// Which resource was exhausted.
        reason: Exhaustion,
    },
}

/// Statistics of one BMC run.
#[derive(Clone, Debug, Default)]
pub struct BmcStats {
    /// Registers in the property's cone of influence.
    pub coi_registers: usize,
    /// Gates in the property's cone of influence.
    pub coi_gates: usize,
    /// Registers in the final abstraction (activated in abstract solves).
    pub abstract_registers: usize,
    /// UNSAT-core refinement rounds (rounds that grew the abstraction).
    pub refinements: usize,
    /// Solver variables allocated over the whole run.
    pub vars: usize,
    /// Clauses added over the whole run.
    pub clauses: usize,
    /// CDCL solver counters (conflicts, decisions, propagations, learned
    /// clauses, restarts) accumulated over every solve call.
    pub solver: SolverStats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Report of a BMC run.
#[derive(Clone, Debug)]
pub struct BmcReport {
    /// How the run ended.
    pub verdict: BmcVerdict,
    /// The validated counterexample when the verdict is
    /// [`BmcVerdict::Falsified`] (`None` otherwise).
    pub trace: Option<Trace>,
    /// Run statistics.
    pub stats: BmcStats,
}

/// Runs SAT-based bounded model checking on the property's cone of
/// influence, refining a register-subset abstraction from UNSAT cores.
///
/// # Errors
///
/// Returns structural netlist errors, [`RfnError::BadProperty`] if the
/// property's signal is not in the design, and
/// [`Error::Witness`](crate::Error::Witness) if a counterexample fails
/// concrete replay (an engine bug, reported loudly rather than folded
/// into the verdict).
pub fn verify_bmc(
    netlist: &Netlist,
    property: &Property,
    options: &BmcOptions,
) -> Result<BmcReport, RfnError> {
    let mut span = options.common.trace.span_with(
        "bmc",
        vec![("property".to_owned(), property.name.as_str().into())],
    );
    let result = verify_bmc_inner(netlist, property, options);
    if let Ok(report) = &result {
        let (verdict, depth) = match &report.verdict {
            BmcVerdict::Falsified { depth } => ("falsified", Some(*depth)),
            BmcVerdict::BoundedSafe { depth } => ("bounded_safe", Some(*depth)),
            BmcVerdict::OutOfBudget { depth, reason } => {
                span.record("abort_reason", reason.as_str());
                ("out_of_budget", *depth)
            }
        };
        span.record("verdict", verdict);
        if let Some(depth) = depth {
            span.record("depth", depth);
        }
        span.record("coi_registers", report.stats.coi_registers);
        span.record("abstract_registers", report.stats.abstract_registers);
        span.record("refinements", report.stats.refinements);
        span.record("conflicts", report.stats.solver.conflicts);
        span.record("propagations", report.stats.solver.propagations);
    }
    result
}

fn verify_bmc_inner(
    netlist: &Netlist,
    property: &Property,
    options: &BmcOptions,
) -> Result<BmcReport, RfnError> {
    let start = Instant::now();
    if property.signal.index() >= netlist.num_signals() {
        return Err(RfnError::BadProperty(format!(
            "signal of property '{}' is not in design '{}'",
            property.name,
            netlist.name()
        )));
    }
    let budget = &options.common.budget;
    let ctx = &options.common.trace;
    let mut solver = Solver::new();
    solver.set_budget(budget.clone());
    let mut unroller = Unroller::new(netlist, &mut solver, [property.signal])?;
    let registers: Vec<SignalId> = unroller.coi().registers().to_vec();
    let mut stats = BmcStats {
        coi_registers: registers.len(),
        coi_gates: unroller.coi().gates().len(),
        ..BmcStats::default()
    };
    // The abstraction: registers whose activation literal is assumed in
    // abstract solves. Grown from failed-assumption cores.
    let mut active = vec![false; netlist.num_signals()];
    let mut num_active = 0usize;
    let phase_deadline = budget.deadline_for(GovPhase::Bmc);
    let mut safe_depth: Option<usize> = None;

    let finish = |verdict: BmcVerdict,
                  trace: Option<Trace>,
                  mut stats: BmcStats,
                  solver: &Solver,
                  num_active: usize| {
        stats.abstract_registers = num_active;
        stats.vars = solver.num_vars();
        stats.clauses = solver.num_clauses();
        stats.solver = solver.stats();
        stats.elapsed = start.elapsed();
        Ok(BmcReport {
            verdict,
            trace,
            stats,
        })
    };

    for k in 0..=options.max_depth {
        if let Err(reason) = budget.check() {
            return finish(
                BmcVerdict::OutOfBudget {
                    depth: safe_depth,
                    reason,
                },
                None,
                stats,
                &solver,
                num_active,
            );
        }
        if phase_deadline.is_some_and(|d| Instant::now() >= d) {
            return finish(
                BmcVerdict::OutOfBudget {
                    depth: safe_depth,
                    reason: Exhaustion::TimeLimit,
                },
                None,
                stats,
                &solver,
                num_active,
            );
        }
        unroller.ensure_frame(&mut solver, k);
        let bad = match unroller.term(k, property.signal) {
            Term::Const(b) if b == property.value => None,
            Term::Const(_) => {
                // The bad value is structurally impossible at this frame.
                safe_depth = Some(k);
                continue;
            }
            Term::Lit(l) => Some(if property.value { l } else { !l }),
        };
        // Abstract solve: only the refined registers are activated.
        let abstract_sat = if num_active == registers.len() && bad.is_some() {
            // Abstraction is complete: the concrete solve below is the
            // abstract solve.
            true
        } else {
            let mut assumptions: Vec<Lit> = registers
                .iter()
                .filter(|r| active[r.index()])
                .map(|&r| unroller.activation(r))
                .collect();
            assumptions.extend(bad);
            match solver.solve(&assumptions) {
                SolveResult::Sat => true,
                SolveResult::Unsat => false,
                SolveResult::Unknown(reason) => {
                    return finish(
                        BmcVerdict::OutOfBudget {
                            depth: safe_depth,
                            reason,
                        },
                        None,
                        stats,
                        &solver,
                        num_active,
                    );
                }
            }
        };
        if abstract_sat {
            // Concrete solve: every register activated.
            let mut assumptions: Vec<Lit> = unroller.activations().collect();
            assumptions.extend(bad);
            match solver.solve(&assumptions) {
                SolveResult::Sat => {
                    let trace =
                        extract_trace(&solver, &unroller, &registers, unroller.coi().inputs(), k);
                    emit_frame_point(ctx, k, &solver, num_active);
                    if !validate_trace(netlist, property, &trace)? {
                        return Err(RfnError::Witness {
                            phase: Phase::Concretize,
                            detail: format!(
                                "BMC counterexample of property '{}' at depth {k} \
                                 failed concrete replay",
                                property.name
                            ),
                        });
                    }
                    return finish(
                        BmcVerdict::Falsified { depth: k },
                        Some(trace),
                        stats,
                        &solver,
                        num_active,
                    );
                }
                SolveResult::Unsat => {
                    // The concrete model refutes the abstract counterexample
                    // at this depth, so depth k is safe; the failed
                    // assumptions name the registers to refine with.
                    let core_regs: Vec<SignalId> = registers
                        .iter()
                        .copied()
                        .filter(|&r| {
                            !active[r.index()] && solver.core().contains(&unroller.activation(r))
                        })
                        .collect();
                    if !core_regs.is_empty() {
                        stats.refinements += 1;
                        ctx.point(
                            "bmc.refine",
                            vec![
                                ("depth".to_owned(), k.into()),
                                ("core_registers".to_owned(), core_regs.len().into()),
                                (
                                    "abstract_registers".to_owned(),
                                    (num_active + core_regs.len()).into(),
                                ),
                            ],
                        );
                        for r in core_regs {
                            active[r.index()] = true;
                            num_active += 1;
                        }
                    }
                }
                SolveResult::Unknown(reason) => {
                    return finish(
                        BmcVerdict::OutOfBudget {
                            depth: safe_depth,
                            reason,
                        },
                        None,
                        stats,
                        &solver,
                        num_active,
                    );
                }
            }
        }
        safe_depth = Some(k);
        emit_frame_point(ctx, k, &solver, num_active);
    }
    finish(
        BmcVerdict::BoundedSafe {
            depth: options.max_depth,
        },
        None,
        stats,
        &solver,
        num_active,
    )
}

/// Runs the group BMC lane: one [`Unroller`] over the union cone of
/// influence of a property group and one incremental solver in which each
/// property's bad literal is a per-call assumption, so learned clauses and
/// frame clauses transfer across properties as well as depths.
///
/// At every depth each still-pending property is checked in index order;
/// falsified properties retire with a validated counterexample at that
/// depth (the shortest, since depths ascend and every pending property is
/// checked at every depth — identical to a dedicated [`verify_bmc`] run).
/// The register-subset abstraction and its UNSAT-core refinements are
/// shared by the whole group. Returns one [`BmcReport`] per property,
/// indexed like the input slice: COI sizes are each property's own, while
/// abstraction size, refinement count, solver counters and elapsed time
/// describe the shared run.
///
/// `key` names the group in the wrapping `bmc_group` trace span.
///
/// # Errors
///
/// As [`verify_bmc`]: structural errors, [`RfnError::BadProperty`], and
/// [`Error::Witness`](crate::Error::Witness) on failed concrete replay.
pub fn verify_bmc_group(
    netlist: &Netlist,
    properties: &[Property],
    key: &str,
    options: &BmcOptions,
) -> Result<Vec<BmcReport>, RfnError> {
    let mut span = options.common.trace.span_with(
        "bmc_group",
        vec![
            ("group".to_owned(), key.into()),
            ("members".to_owned(), properties.len().into()),
        ],
    );
    let result = verify_bmc_group_inner(netlist, properties, options);
    if let Ok(reports) = &result {
        let falsified = reports
            .iter()
            .filter(|r| matches!(r.verdict, BmcVerdict::Falsified { .. }))
            .count();
        span.record("falsified", falsified);
        if let Some(r) = reports.first() {
            span.record("abstract_registers", r.stats.abstract_registers);
            span.record("refinements", r.stats.refinements);
            span.record("conflicts", r.stats.solver.conflicts);
        }
        // Per-property spans carry the same fields as a dedicated
        // `verify_bmc` run, so downstream consumers keep one span per
        // property whether or not grouping is on.
        for (p, report) in properties.iter().zip(reports) {
            let mut ps = options
                .common
                .trace
                .span_with("bmc", vec![("property".to_owned(), p.name.as_str().into())]);
            let (verdict, depth) = match &report.verdict {
                BmcVerdict::Falsified { depth } => ("falsified", Some(*depth)),
                BmcVerdict::BoundedSafe { depth } => ("bounded_safe", Some(*depth)),
                BmcVerdict::OutOfBudget { depth, reason } => {
                    ps.record("abort_reason", reason.as_str());
                    ("out_of_budget", *depth)
                }
            };
            ps.record("verdict", verdict);
            if let Some(depth) = depth {
                ps.record("depth", depth);
            }
            ps.record("coi_registers", report.stats.coi_registers);
            ps.record("abstract_registers", report.stats.abstract_registers);
            ps.record("refinements", report.stats.refinements);
            ps.record("conflicts", report.stats.solver.conflicts);
            ps.record("propagations", report.stats.solver.propagations);
        }
    }
    result
}

fn verify_bmc_group_inner(
    netlist: &Netlist,
    properties: &[Property],
    options: &BmcOptions,
) -> Result<Vec<BmcReport>, RfnError> {
    let start = Instant::now();
    for property in properties {
        if property.signal.index() >= netlist.num_signals() {
            return Err(RfnError::BadProperty(format!(
                "signal of property '{}' is not in design '{}'",
                property.name,
                netlist.name()
            )));
        }
    }
    let budget = &options.common.budget;
    let ctx = &options.common.trace;
    let mut solver = Solver::new();
    solver.set_budget(budget.clone());
    // One unrolling over the union COI: multi-root construction gives the
    // union for free, and every member's bad literal lives in the same
    // clause database.
    let mut unroller = Unroller::new(netlist, &mut solver, properties.iter().map(|p| p.signal))?;
    let registers: Vec<SignalId> = unroller.coi().registers().to_vec();
    let member_cois: Vec<Coi> = properties
        .iter()
        .map(|p| Coi::of(netlist, [p.signal]))
        .collect();
    // The shared abstraction: a register activated for one member stays
    // activated for all. Soundness is per-solve — freeing registers only
    // adds behaviour, and falsification is always decided by the concrete
    // solve — so sharing refinements never changes a verdict, it only
    // skips abstract counterexamples another member already refuted.
    let mut active = vec![false; netlist.num_signals()];
    let mut num_active = 0usize;
    let phase_deadline = budget.deadline_for(GovPhase::Bmc);
    let mut safe_depth: Vec<Option<usize>> = vec![None; properties.len()];
    let mut outcomes: Vec<Option<(BmcVerdict, Option<Trace>)>> = vec![None; properties.len()];
    let mut refinements = 0usize;

    'depths: for k in 0..=options.max_depth {
        let exhausted = match budget.check() {
            Err(reason) => Some(reason),
            Ok(()) if phase_deadline.is_some_and(|d| Instant::now() >= d) => {
                Some(Exhaustion::TimeLimit)
            }
            Ok(()) => None,
        };
        if let Some(reason) = exhausted {
            for (pi, o) in outcomes.iter_mut().enumerate() {
                if o.is_none() {
                    *o = Some((
                        BmcVerdict::OutOfBudget {
                            depth: safe_depth[pi],
                            reason,
                        },
                        None,
                    ));
                }
            }
            break 'depths;
        }
        unroller.ensure_frame(&mut solver, k);
        for pi in 0..properties.len() {
            if outcomes[pi].is_some() {
                continue;
            }
            let property = &properties[pi];
            let bad = match unroller.term(k, property.signal) {
                Term::Const(b) if b == property.value => None,
                Term::Const(_) => {
                    // The bad value is structurally impossible at this frame.
                    safe_depth[pi] = Some(k);
                    continue;
                }
                Term::Lit(l) => Some(if property.value { l } else { !l }),
            };
            let abstract_sat = if num_active == registers.len() && bad.is_some() {
                true
            } else {
                let mut assumptions: Vec<Lit> = registers
                    .iter()
                    .filter(|r| active[r.index()])
                    .map(|&r| unroller.activation(r))
                    .collect();
                assumptions.extend(bad);
                match solver.solve(&assumptions) {
                    SolveResult::Sat => true,
                    SolveResult::Unsat => false,
                    SolveResult::Unknown(reason) => {
                        out_of_budget_rest(&mut outcomes, &safe_depth, reason);
                        break 'depths;
                    }
                }
            };
            if abstract_sat {
                let mut assumptions: Vec<Lit> = unroller.activations().collect();
                assumptions.extend(bad);
                match solver.solve(&assumptions) {
                    SolveResult::Sat => {
                        let trace = extract_trace(
                            &solver,
                            &unroller,
                            member_cois[pi].registers(),
                            member_cois[pi].inputs(),
                            k,
                        );
                        if !validate_trace(netlist, property, &trace)? {
                            return Err(RfnError::Witness {
                                phase: Phase::Concretize,
                                detail: format!(
                                    "BMC counterexample of property '{}' at depth {k} \
                                     failed concrete replay",
                                    property.name
                                ),
                            });
                        }
                        outcomes[pi] = Some((BmcVerdict::Falsified { depth: k }, Some(trace)));
                        continue;
                    }
                    SolveResult::Unsat => {
                        let core_regs: Vec<SignalId> = registers
                            .iter()
                            .copied()
                            .filter(|&r| {
                                !active[r.index()]
                                    && solver.core().contains(&unroller.activation(r))
                            })
                            .collect();
                        if !core_regs.is_empty() {
                            refinements += 1;
                            ctx.point(
                                "bmc.refine",
                                vec![
                                    ("depth".to_owned(), k.into()),
                                    ("property".to_owned(), property.name.as_str().into()),
                                    ("core_registers".to_owned(), core_regs.len().into()),
                                    (
                                        "abstract_registers".to_owned(),
                                        (num_active + core_regs.len()).into(),
                                    ),
                                ],
                            );
                            for r in core_regs {
                                active[r.index()] = true;
                                num_active += 1;
                            }
                        }
                    }
                    SolveResult::Unknown(reason) => {
                        out_of_budget_rest(&mut outcomes, &safe_depth, reason);
                        break 'depths;
                    }
                }
            }
            safe_depth[pi] = Some(k);
        }
        emit_frame_point(ctx, k, &solver, num_active);
        if outcomes.iter().all(|o| o.is_some()) {
            break 'depths;
        }
    }

    let elapsed = start.elapsed();
    let solver_stats = solver.stats();
    let vars = solver.num_vars();
    let clauses = solver.num_clauses();
    Ok(outcomes
        .into_iter()
        .enumerate()
        .map(|(pi, o)| {
            let (verdict, trace) = o.unwrap_or((
                BmcVerdict::BoundedSafe {
                    depth: options.max_depth,
                },
                None,
            ));
            BmcReport {
                verdict,
                trace,
                stats: BmcStats {
                    coi_registers: member_cois[pi].num_registers(),
                    coi_gates: member_cois[pi].num_gates(),
                    abstract_registers: num_active,
                    refinements,
                    vars,
                    clauses,
                    solver: solver_stats,
                    elapsed,
                },
            }
        })
        .collect())
}

/// Marks every still-pending property out-of-budget with its own deepest
/// completed frame.
fn out_of_budget_rest(
    outcomes: &mut [Option<(BmcVerdict, Option<Trace>)>],
    safe_depth: &[Option<usize>],
    reason: Exhaustion,
) {
    for (pi, o) in outcomes.iter_mut().enumerate() {
        if o.is_none() {
            *o = Some((
                BmcVerdict::OutOfBudget {
                    depth: safe_depth[pi],
                    reason,
                },
                None,
            ));
        }
    }
}

fn emit_frame_point(ctx: &TraceCtx, k: usize, solver: &Solver, num_active: usize) {
    if !ctx.is_enabled() {
        return;
    }
    let s = solver.stats();
    ctx.point(
        "bmc.frame",
        vec![
            ("depth".to_owned(), k.into()),
            ("conflicts".to_owned(), s.conflicts.into()),
            ("propagations".to_owned(), s.propagations.into()),
            ("abstract_registers".to_owned(), num_active.into()),
        ],
    );
}

/// Reads a counterexample out of the solver model: one step per frame,
/// with the COI register values as the state cube and the COI input values
/// as the input cube. Unassigned variables (irrelevant to the conflict
/// set) default to `false`, matching `validate_trace`'s convention for
/// undriven inputs.
fn extract_trace(
    solver: &Solver,
    unroller: &Unroller<'_>,
    registers: &[SignalId],
    inputs: &[SignalId],
    depth: usize,
) -> Trace {
    let term_value = |t: usize, sig: SignalId| match unroller.term(t, sig) {
        Term::Const(b) => b,
        Term::Lit(l) => {
            let v = solver.value(l.var()).unwrap_or(false);
            if l.is_positive() {
                v
            } else {
                !v
            }
        }
    };
    let mut trace = Trace::new();
    for t in 0..=depth {
        let mut step = TraceStep::default();
        for &r in registers {
            let _ = step.state.insert(r, term_value(t, r));
        }
        for &i in inputs {
            let _ = step.inputs.insert(i, term_value(t, i));
        }
        trace.push(step);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// A wrapping 3-bit counter with a watchdog on value `target`.
    fn counter3(target: u8) -> (Netlist, Property) {
        let mut n = Netlist::new("counter3");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let b2 = n.add_register("b2", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b1, b0]);
        let c01 = n.add_gate("c01", GateOp::And, &[b0, b1]);
        let n2 = n.add_gate("n2", GateOp::Xor, &[b2, c01]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.set_register_next(b2, n2).unwrap();
        let bits = [b0, b1, b2];
        let fanins: Vec<_> = (0..3)
            .map(|i| {
                if target >> i & 1 == 1 {
                    bits[i]
                } else {
                    n.add_gate(&format!("inv{i}"), GateOp::Not, &[bits[i]])
                }
            })
            .collect();
        let bad = n.add_gate("bad", GateOp::And, &fanins);
        n.validate().unwrap();
        let p = Property::never(&n, "no_target", bad);
        (n, p)
    }

    #[test]
    fn finds_shortest_counterexample_with_validated_trace() {
        let (n, p) = counter3(5);
        let report = verify_bmc(&n, &p, &BmcOptions::default()).unwrap();
        assert_eq!(report.verdict, BmcVerdict::Falsified { depth: 5 });
        let trace = report.trace.expect("falsification carries a trace");
        assert_eq!(trace.num_cycles(), 6);
        assert_eq!(validate_trace(&n, &p, &trace), Ok(true));
    }

    #[test]
    fn safe_design_is_bounded_safe_with_small_abstraction() {
        // A saturating 2-bit counter plus a watchdog that never fires.
        let mut n = Netlist::new("safe");
        let flag = n.add_register("flag", Some(false));
        n.set_register_next(flag, flag).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "flag_low", flag);
        let opts = BmcOptions::default().with_max_depth(32);
        let report = verify_bmc(&n, &p, &opts).unwrap();
        assert_eq!(report.verdict, BmcVerdict::BoundedSafe { depth: 32 });
        assert!(report.trace.is_none());
        assert_eq!(report.stats.coi_registers, 1);
    }

    #[test]
    fn refinement_grows_the_abstraction_from_cores() {
        let (n, p) = counter3(5);
        let report = verify_bmc(&n, &p, &BmcOptions::default()).unwrap();
        // The free-register abstraction hits the watchdog at frame 0, so at
        // least one refinement round must have fired before depth 5.
        assert!(report.stats.refinements > 0);
        assert!(report.stats.abstract_registers > 0);
        assert!(report.stats.abstract_registers <= report.stats.coi_registers);
    }

    #[test]
    fn cancelled_budget_reports_out_of_budget() {
        let (n, p) = counter3(5);
        let budget = Budget::unlimited();
        budget.cancel();
        let opts = BmcOptions::default().with_budget(budget);
        let report = verify_bmc(&n, &p, &opts).unwrap();
        assert!(matches!(
            report.verdict,
            BmcVerdict::OutOfBudget {
                reason: Exhaustion::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn depth_counts_match_the_plain_engine() {
        for target in 1..8u8 {
            let (n, p) = counter3(target);
            let report = verify_bmc(&n, &p, &BmcOptions::default()).unwrap();
            let plain = rfn_mc::verify_plain(&n, &p, &rfn_mc::PlainOptions::default()).unwrap();
            let rfn_mc::PlainVerdict::Falsified { depth } = plain.verdict else {
                panic!("plain engine must falsify target {target}");
            };
            assert_eq!(report.verdict, BmcVerdict::Falsified { depth });
        }
    }

    /// A wrapping 3-bit counter with one watchdog detector per requested
    /// value, plus a self-looping flag whose property is genuinely safe.
    fn counter3_multi(targets: &[u8]) -> (Netlist, Vec<Property>) {
        let mut n = Netlist::new("counter3_multi");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let b2 = n.add_register("b2", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b1, b0]);
        let c01 = n.add_gate("c01", GateOp::And, &[b0, b1]);
        let n2 = n.add_gate("n2", GateOp::Xor, &[b2, c01]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.set_register_next(b2, n2).unwrap();
        let bits = [b0, b1, b2];
        let mut properties = Vec::new();
        for &target in targets {
            let fanins: Vec<_> = (0..3)
                .map(|i| {
                    if target >> i & 1 == 1 {
                        bits[i]
                    } else {
                        n.add_gate(&format!("inv{target}_{i}"), GateOp::Not, &[bits[i]])
                    }
                })
                .collect();
            let bad = n.add_gate(&format!("bad{target}"), GateOp::And, &fanins);
            properties.push((format!("no_{target}"), bad));
        }
        let flag = n.add_register("flag", Some(false));
        n.set_register_next(flag, flag).unwrap();
        properties.push(("flag_low".to_owned(), flag));
        n.validate().unwrap();
        let properties = properties
            .into_iter()
            .map(|(name, signal)| Property::never(&n, &name, signal))
            .collect();
        (n, properties)
    }

    #[test]
    fn group_reports_match_dedicated_bmc_runs() {
        let (n, properties) = counter3_multi(&[2, 5, 7]);
        let opts = BmcOptions::default().with_max_depth(12);
        let reports = verify_bmc_group(&n, &properties, "g0", &opts).unwrap();
        assert_eq!(reports.len(), properties.len());
        for (p, report) in properties.iter().zip(&reports) {
            let solo = verify_bmc(&n, p, &opts).unwrap();
            assert_eq!(report.verdict, solo.verdict, "property {}", p.name);
            assert_eq!(
                report.stats.coi_registers, solo.stats.coi_registers,
                "property {}",
                p.name
            );
            assert_eq!(report.trace.is_some(), solo.trace.is_some());
        }
        // Counterexample depths are the counter values; traces replay.
        assert_eq!(reports[0].verdict, BmcVerdict::Falsified { depth: 2 });
        assert_eq!(reports[1].verdict, BmcVerdict::Falsified { depth: 5 });
        assert_eq!(reports[2].verdict, BmcVerdict::Falsified { depth: 7 });
        assert_eq!(reports[3].verdict, BmcVerdict::BoundedSafe { depth: 12 });
        for (p, report) in properties.iter().zip(&reports) {
            if let Some(trace) = &report.trace {
                assert_eq!(validate_trace(&n, p, trace), Ok(true));
            }
        }
    }

    #[test]
    fn group_shares_one_solver_across_members() {
        let (n, properties) = counter3_multi(&[6, 7]);
        let opts = BmcOptions::default().with_max_depth(8);
        let reports = verify_bmc_group(&n, &properties, "g0", &opts).unwrap();
        // Shared-run statistics are identical across members; the solo runs
        // together need more solver variables than the one shared unrolling
        // because each re-unrolls the counter up to its own depth.
        let shared_vars = reports[0].stats.vars;
        assert!(reports.iter().all(|r| r.stats.vars == shared_vars));
        let solo_vars: usize = properties
            .iter()
            .map(|p| verify_bmc(&n, p, &opts).unwrap().stats.vars)
            .sum();
        assert!(shared_vars < solo_vars);
    }

    #[test]
    fn group_cancelled_budget_marks_all_pending_members() {
        let (n, properties) = counter3_multi(&[5]);
        let budget = Budget::unlimited();
        budget.cancel();
        let opts = BmcOptions::default().with_budget(budget);
        let reports = verify_bmc_group(&n, &properties, "g0", &opts).unwrap();
        for report in &reports {
            assert!(matches!(
                report.verdict,
                BmcVerdict::OutOfBudget {
                    reason: Exhaustion::Cancelled,
                    ..
                }
            ));
        }
    }
}
