//! Unreachable-coverage-state analysis (Section 3, Table 2 of the paper),
//! plus the BFS abstraction baseline of Ho et al. (ICCAD 2000).
//!
//! A *coverage state* is one combination of values of a chosen set of
//! coverage signals (registers). The analysis classifies as many of the
//! `2^n` coverage states as possible:
//!
//! * states outside the projection of an abstract model's forward fixpoint
//!   are **unreachable on the original design** (the abstraction
//!   over-approximates, so the projection over-approximates the real
//!   reachable coverage states);
//! * states visited by a concrete trace (found through hybrid trace
//!   reconstruction + guided ATPG) are **reachable**;
//! * abstract traces that fail to concretize drive refinement, after which
//!   the loop repeats.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rfn_atpg::AtpgOptions;
use rfn_govern::{Budget, GovPhase};
use rfn_mc::{
    forward_reach, CommonOptions, ModelSpec, ReachOptions, ReachResult, ReachVerdict, SymbolicModel,
};
use rfn_netlist::{transitive_fanin, Abstraction, Coi, CoverageSet, Cube, Netlist, SignalId};
use rfn_sim::{RandomSimOptions, Simulator};
use rfn_trace::TraceCtx;

use crate::{
    concretize_cube, hybrid_trace, refine_with_roots, ConcretizeOptions, ConcretizeOutcome,
    HybridOutcome, Phase, RefineOptions, RfnError,
};

/// Configuration for [`analyze_coverage`].
#[derive(Clone, Debug)]
pub struct CoverageOptions {
    /// The budget and trace context shared with every other engine (see
    /// [`CommonOptions`]). The budget governs the whole analysis — wall
    /// clock, phase quotas, ceilings and the cooperative cancellation token
    /// (the paper used 1,800 s per RFN experiment); the trace context wraps
    /// each `analyze_coverage` call in a `coverage` span with per-iteration
    /// child spans.
    pub common: CommonOptions,
    /// Maximum refinement iterations.
    pub max_iterations: usize,
    /// BDD node limit per iteration.
    pub mc_node_limit: usize,
    /// Reachability options.
    pub reach: ReachOptions,
    /// ATPG limits for concretization.
    pub concretize_atpg: AtpgOptions,
    /// Random-simulation engine tried before the concretization ATPG
    /// (`batches = 0` disables it). Random-found traces are sound here too:
    /// every hit is replayed concretely before being reported.
    pub concretize_sim: RandomSimOptions,
    /// ATPG limits for the hybrid engine.
    pub hybrid_atpg: AtpgOptions,
    /// Refinement configuration.
    pub refine: RefineOptions,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            common: CommonOptions::default(),
            max_iterations: 32,
            mc_node_limit: 4_000_000,
            reach: ReachOptions::default(),
            concretize_atpg: AtpgOptions {
                max_backtracks: 5_000,
                ..AtpgOptions::default()
            },
            concretize_sim: RandomSimOptions::default(),
            hybrid_atpg: AtpgOptions::default(),
            refine: RefineOptions::default(),
        }
    }
}

impl CoverageOptions {
    /// Sets the wall-clock budget for the analysis. The clock starts now:
    /// this is shorthand for re-anchoring the shared budget with a
    /// wall-clock limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.common = self.common.with_time_limit(limit);
        self
    }

    /// Replaces the analysis' shared resource budget wholesale.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.common = self.common.with_budget(budget);
        self
    }

    /// The wall-clock limit of the analysis' budget, if bounded.
    pub fn time_limit(&self) -> Option<Duration> {
        self.common.time_limit()
    }

    /// Sets the maximum number of refinement iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Sets the BDD node limit per iteration.
    #[must_use]
    pub fn with_mc_node_limit(mut self, nodes: usize) -> Self {
        self.mc_node_limit = nodes;
        self
    }

    /// Sets the transition-cluster node threshold for image computation
    /// (`0` keeps one partition per register).
    #[must_use]
    pub fn with_cluster_limit(mut self, limit: usize) -> Self {
        self.reach.cluster_limit = limit;
        self
    }

    /// Enables or disables don't-care frontier minimization in the forward
    /// fixpoints.
    #[must_use]
    pub fn with_frontier_simplify(mut self, simplify: bool) -> Self {
        self.reach.frontier_simplify = simplify;
        self
    }

    /// Sets the number of image-computation worker threads in every forward
    /// fixpoint (`1` = the serial engine; results are identical for any
    /// thread count).
    #[must_use]
    pub fn with_bdd_threads(mut self, threads: usize) -> Self {
        self.reach.bdd_threads = threads.max(1);
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.common = self.common.with_trace(trace);
        self
    }
}

/// Result of a coverage analysis (one Table 2 row).
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Coverage-set name.
    pub name: String,
    /// Total coverage states (`2^n`).
    pub total_states: u64,
    /// States proven unreachable on the original design.
    pub unreachable: u64,
    /// States confirmed reachable by a concrete trace.
    pub reachable: u64,
    /// States left unclassified when the budget ran out.
    pub unresolved: u64,
    /// Registers in the final abstract model.
    pub abstract_registers: usize,
    /// Registers in the coverage signals' cone of influence.
    pub coi_registers: usize,
    /// Gates in the coverage signals' cone of influence.
    pub coi_gates: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// BDD kernel counters merged over every iteration's manager.
    pub stats: rfn_bdd::BddStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Unknown,
    Unreachable,
    Reachable,
}

/// Runs RFN-style unreachable-coverage-state analysis.
///
/// # Errors
///
/// Fails if a coverage signal is not a register, if the set has more than 24
/// signals (the explicit state classification would not fit in memory), or
/// on structural netlist errors.
pub fn analyze_coverage(
    netlist: &Netlist,
    set: &CoverageSet,
    options: &CoverageOptions,
) -> Result<CoverageReport, RfnError> {
    let ctx = options.common.trace.clone();
    let mut span = ctx.span_with(
        "coverage",
        vec![
            ("set".to_owned(), set.name.as_str().into()),
            ("signals".to_owned(), set.signals.len().into()),
        ],
    );
    let result = analyze_coverage_inner(netlist, set, options, &ctx)
        .map_err(|e| e.with_phase(Phase::Coverage));
    if let Ok(report) = &result {
        span.record("total_states", report.total_states);
        span.record("unreachable", report.unreachable);
        span.record("reachable", report.reachable);
        span.record("unresolved", report.unresolved);
        span.record("abstract_registers", report.abstract_registers);
        span.record("coi_registers", report.coi_registers);
        span.record("coi_gates", report.coi_gates);
        span.record("iterations", report.iterations);
    }
    result
}

fn analyze_coverage_inner(
    netlist: &Netlist,
    set: &CoverageSet,
    options: &CoverageOptions,
    ctx: &TraceCtx,
) -> Result<CoverageReport, RfnError> {
    let start = Instant::now();
    let budget = &options.common.budget;
    validate_coverage_set(netlist, set)?;
    let coi = Coi::of(netlist, set.signals.iter().copied());
    let n_sig = set.signals.len();
    let total = 1u64 << n_sig;
    let mut classes = vec![Class::Unknown; total as usize];
    let mut abstraction = Abstraction::from_registers(set.signals.iter().copied());
    let mut iterations = 0;
    let mut bdd_stats = rfn_bdd::BddStats::default();

    // The initial (reset) coverage state is reachable by definition when all
    // coverage registers have known resets.
    if let Some(bits) = reset_coverage_state(netlist, set) {
        classes[bits as usize] = Class::Reachable;
    }

    'outer: for _ in 0..options.max_iterations {
        iterations += 1;
        let _it_span = ctx.span_with(
            "iteration",
            vec![
                ("n".to_owned(), (iterations - 1).into()),
                ("abstract_registers".to_owned(), abstraction.len().into()),
            ],
        );
        if budget.check().is_err() {
            break;
        }
        let view = abstraction.view(netlist, set.signals.iter().copied())?;
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_node_limit(options.mc_node_limit);
        mgr.set_budget(budget.clone());
        let model_opts = rfn_mc::ModelOptions {
            cluster_limit: options.reach.cluster_limit,
            static_order: options.reach.static_order,
        };
        let mut model = match SymbolicModel::with_options(
            netlist,
            ModelSpec::from_view(&view),
            mgr,
            model_opts,
        ) {
            Ok(m) => m,
            Err(rfn_mc::McError::Bdd(_)) => break,
            Err(e) => return Err(e.into()),
        };
        // Full fixpoint (no early target stop: the projection needs it all).
        let mut reach_opts = options.reach.clone();
        reach_opts.common.trace = ctx.clone();
        reach_opts.common.budget = budget.clone();
        let zero = model.manager_ref().zero();
        let reach = forward_reach(&mut model, zero, &reach_opts)?;
        bdd_stats.merge(&reach.stats);
        if reach.verdict != ReachVerdict::FixpointProved {
            break; // out of capacity on this abstraction
        }
        // Project and classify.
        let proj = model.project_to(reach.reached, &set.signals)?;
        let mut assignment = vec![false; model.manager_ref().num_vars()];
        let cov_vars: Vec<_> = set
            .signals
            .iter()
            .map(|&s| {
                model
                    .current_var(s)
                    .expect("coverage signals are in the model")
            })
            .collect();
        let mut frontier_unknown: Vec<u64> = Vec::new();
        for bits in 0..total {
            for (k, &v) in cov_vars.iter().enumerate() {
                assignment[v.index()] = bits & (1 << k) != 0;
            }
            let in_proj = model.manager_ref().eval(proj, &assignment);
            match classes[bits as usize] {
                Class::Unknown if !in_proj => classes[bits as usize] = Class::Unreachable,
                Class::Unknown if in_proj => frontier_unknown.push(bits),
                _ => {}
            }
        }
        if frontier_unknown.is_empty() {
            break; // fully classified
        }

        // Work through the frontier on this fixpoint: every state either
        // gets concretized (and marked reachable, along with everything the
        // concrete replay visits) or triggers a refinement, after which the
        // fixpoint must be recomputed.
        let exact = view.pseudo_inputs().is_empty();
        let mut refined = false;
        let mut stuck = false;
        for &bits in &frontier_unknown {
            if classes[bits as usize] != Class::Unknown {
                continue; // an earlier replay covered it
            }
            if budget.check().is_err() {
                break 'outer;
            }
            let target_cube: Cube = set
                .signals
                .iter()
                .enumerate()
                .map(|(k, &s)| (s, bits & (1 << k) != 0))
                .collect();
            let target_bdd = model.cube_to_bdd(&target_cube)?;
            // First ring containing the state.
            let mut hit_step = None;
            for (j, &ring) in reach.rings.iter().enumerate() {
                let inter = match model.manager().and(ring, target_bdd) {
                    Ok(b) => b,
                    Err(_) => break 'outer,
                };
                if inter != model.manager_ref().zero() {
                    hit_step = Some(j);
                    break;
                }
            }
            let Some(step) = hit_step else {
                // In the projection but in no ring: cannot happen for a
                // completed fixpoint; bail defensively.
                stuck = true;
                break;
            };
            let synth = ReachResult {
                verdict: ReachVerdict::TargetHit { step },
                abort: None,
                rings: reach.rings.clone(),
                reached: reach.reached,
                steps: reach.steps,
                peak_nodes: reach.peak_nodes,
                stats: reach.stats,
            };
            let mut hybrid_atpg = options.hybrid_atpg.clone();
            hybrid_atpg.trace = ctx.clone();
            hybrid_atpg.budget = budget.clone();
            hybrid_atpg.phase = GovPhase::Hybrid;
            let abstract_trace = {
                let _hspan = ctx.span("hybrid");
                match hybrid_trace(netlist, &view, &mut model, &synth, target_bdd, &hybrid_atpg)? {
                    HybridOutcome::Trace(t, _) => t,
                    HybridOutcome::Failed(_) => {
                        stuck = true;
                        break;
                    }
                }
            };

            let concrete = if exact {
                // The abstraction is the whole COI: abstract traces are real.
                Some(abstract_trace.clone())
            } else {
                let mut conc_opts = ConcretizeOptions {
                    atpg: options.concretize_atpg.clone(),
                    sim: options.concretize_sim.clone(),
                    ..ConcretizeOptions::default()
                };
                conc_opts.atpg.trace = ctx.clone();
                conc_opts.sim.trace = ctx.clone();
                conc_opts.atpg.budget = budget.clone();
                conc_opts.sim.budget = budget.clone();
                let _cspan = ctx.span("concretize");
                match concretize_cube(netlist, &target_cube, &abstract_trace, &conc_opts)? {
                    ConcretizeOutcome::Falsified(t) => Some(t),
                    _ => None,
                }
            };
            match concrete {
                Some(trace) => {
                    // The trace was validated against `target_cube` (or the
                    // abstraction is exact), so `bits` is reachable — as is
                    // every coverage state the concrete replay visits.
                    for visited in replay_coverage_states(netlist, set, &trace) {
                        if classes[visited as usize] == Class::Unknown {
                            classes[visited as usize] = Class::Reachable;
                        }
                    }
                    if classes[bits as usize] == Class::Unknown {
                        classes[bits as usize] = Class::Reachable;
                    }
                }
                None => {
                    // Spurious: refine against the coverage roots and restart
                    // with a fixpoint on the refined abstraction.
                    let mut refine_opts = options.refine.clone();
                    refine_opts.atpg.trace = ctx.clone();
                    refine_opts.atpg.budget = budget.clone();
                    refine_opts.atpg.phase = GovPhase::Refine;
                    let report = {
                        let mut rspan = ctx.span("refine");
                        let report = refine_with_roots(
                            netlist,
                            &mut abstraction,
                            &set.signals,
                            &abstract_trace,
                            &refine_opts,
                        )?;
                        rspan.record("added", report.added.len());
                        rspan.record("candidates", report.candidates);
                        rspan.record("conflicts", report.conflicts_found);
                        report
                    };
                    refined = !report.added.is_empty();
                    stuck = !refined;
                    break;
                }
            }
        }
        drop(model);
        if stuck {
            break;
        }
        if !refined {
            // Every frontier state was classified; the next pass re-projects
            // and terminates (or finds newly classifiable states).
            continue;
        }
    }

    let unreachable = classes.iter().filter(|&&c| c == Class::Unreachable).count() as u64;
    let reachable = classes.iter().filter(|&&c| c == Class::Reachable).count() as u64;
    Ok(CoverageReport {
        name: set.name.clone(),
        total_states: total,
        unreachable,
        reachable,
        unresolved: total - unreachable - reachable,
        abstract_registers: abstraction.len(),
        coi_registers: coi.num_registers(),
        coi_gates: coi.num_gates(),
        iterations,
        elapsed: start.elapsed(),
        stats: bdd_stats,
    })
}

/// The BFS abstraction baseline: take the `k` registers closest to the
/// coverage signals (BFS over the register dependency graph, the method of
/// the paper's reference \[8\]), run one forward fixpoint, and classify
/// coverage states by projection.
///
/// # Errors
///
/// Same conditions as [`analyze_coverage`].
pub fn bfs_coverage(
    netlist: &Netlist,
    set: &CoverageSet,
    k: usize,
    node_limit: usize,
    reach: &ReachOptions,
) -> Result<CoverageReport, RfnError> {
    let start = Instant::now();
    validate_coverage_set(netlist, set)?;
    let coi = Coi::of(netlist, set.signals.iter().copied());
    let regs = closest_registers(netlist, &set.signals, k);
    let abstraction = Abstraction::from_registers(regs);
    let view = abstraction.view(netlist, set.signals.iter().copied())?;
    let total = 1u64 << set.signals.len();

    let mut mgr = rfn_bdd::BddManager::new();
    mgr.set_node_limit(node_limit);
    let mut unreachable = 0;
    let mut unresolved = total;
    let mut bdd_stats = rfn_bdd::BddStats::default();
    let model_opts = rfn_mc::ModelOptions {
        cluster_limit: reach.cluster_limit,
        static_order: reach.static_order,
    };
    match SymbolicModel::with_options(netlist, ModelSpec::from_view(&view), mgr, model_opts) {
        Ok(mut model) => {
            let zero = model.manager_ref().zero();
            let result = forward_reach(&mut model, zero, reach)?;
            bdd_stats = result.stats;
            if result.verdict == ReachVerdict::FixpointProved {
                let proj = model.project_to(result.reached, &set.signals)?;
                let mut assignment = vec![false; model.manager_ref().num_vars()];
                let cov_vars: Vec<_> = set
                    .signals
                    .iter()
                    .map(|&s| model.current_var(s).expect("coverage regs in model"))
                    .collect();
                for bits in 0..total {
                    for (j, &v) in cov_vars.iter().enumerate() {
                        assignment[v.index()] = bits & (1 << j) != 0;
                    }
                    if !model.manager_ref().eval(proj, &assignment) {
                        unreachable += 1;
                    }
                }
                unresolved = 0;
            }
        }
        Err(rfn_mc::McError::Bdd(_)) => {}
        Err(e) => return Err(e.into()),
    }
    Ok(CoverageReport {
        name: set.name.clone(),
        total_states: total,
        unreachable,
        reachable: 0,
        unresolved: unresolved.saturating_sub(unreachable),
        abstract_registers: abstraction.len(),
        coi_registers: coi.num_registers(),
        coi_gates: coi.num_gates(),
        iterations: 1,
        elapsed: start.elapsed(),
        stats: bdd_stats,
    })
}

fn validate_coverage_set(netlist: &Netlist, set: &CoverageSet) -> Result<(), RfnError> {
    if set.signals.len() > 24 {
        return Err(RfnError::BadProperty(format!(
            "coverage set `{}` has {} signals; at most 24 are supported",
            set.name,
            set.signals.len()
        )));
    }
    for &s in &set.signals {
        if s.index() >= netlist.num_signals() || !netlist.is_register(s) {
            return Err(RfnError::BadProperty(format!(
                "coverage signal {s} is not a register of the design"
            )));
        }
    }
    Ok(())
}

fn reset_coverage_state(netlist: &Netlist, set: &CoverageSet) -> Option<u64> {
    let mut bits = 0u64;
    for (k, &s) in set.signals.iter().enumerate() {
        match netlist.register_init(s) {
            Some(true) => bits |= 1 << k,
            Some(false) => {}
            None => return None,
        }
    }
    Some(bits)
}

/// BFS over the register dependency graph: distance 0 = the coverage
/// signals; a register's next-state cone's register leaves are one hop away.
/// Returns the closest `k` registers (including the coverage signals).
fn closest_registers(netlist: &Netlist, seeds: &[SignalId], k: usize) -> Vec<SignalId> {
    let mut dist = vec![usize::MAX; netlist.num_signals()];
    let mut queue = VecDeque::new();
    for &s in seeds {
        dist[s.index()] = 0;
        queue.push_back(s);
    }
    let mut picked: Vec<SignalId> = Vec::new();
    while let Some(r) = queue.pop_front() {
        if picked.len() >= k {
            break;
        }
        picked.push(r);
        let cone = transitive_fanin(netlist, [netlist.register_next(r)]);
        for leaf in cone.register_leaves {
            if dist[leaf.index()] == usize::MAX {
                dist[leaf.index()] = dist[r.index()] + 1;
                queue.push_back(leaf);
            }
        }
    }
    picked
}

/// Replays a trace concretely (unassigned inputs low) and collects the
/// coverage states visited at every cycle.
fn replay_coverage_states(netlist: &Netlist, set: &CoverageSet, trace: &Trace) -> Vec<u64> {
    let Ok(mut sim) = Simulator::new(netlist) else {
        return Vec::new();
    };
    sim.reset();
    for (s, v) in trace.steps()[0].state.iter() {
        if netlist.is_register(s) && netlist.register_init(s).is_none() {
            sim.set(s, rfn_sim::Tv::from(v));
        }
    }
    let mut out = Vec::new();
    let mut record = |sim: &Simulator| {
        let mut bits = 0u64;
        for (k, &s) in set.signals.iter().enumerate() {
            match sim.value(s).to_bool() {
                Some(true) => bits |= 1 << k,
                Some(false) => {}
                None => return, // unknown coverage value: skip this cycle
            }
        }
        out.push(bits);
    };
    record(&sim);
    for step in trace.steps() {
        let mut inputs = Cube::new();
        for &pi in netlist.inputs() {
            let v = step.inputs.get(pi).unwrap_or(false);
            let _ = inputs.insert(pi, v);
        }
        sim.step(&inputs);
        record(&sim);
    }
    out
}

use rfn_netlist::Trace;

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// A 2-bit one-hot-ish machine: state (a,b) cycles 00 -> 01 -> 10 -> 00;
    /// state 11 is unreachable. A distant mode register gates nothing.
    fn rotator() -> (Netlist, CoverageSet) {
        let mut n = Netlist::new("rot");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        // next_a = b ; next_b = !(a | b)  -- cycles 00 -> 01 -> 10 -> 00
        let nor_ab = n.add_gate("nor_ab", GateOp::Nor, &[a, b]);
        n.set_register_next(a, b).unwrap();
        n.set_register_next(b, nor_ab).unwrap();
        n.validate().unwrap();
        let set = CoverageSet::new("rot", [a, b]);
        (n, set)
    }

    #[test]
    fn classifies_the_rotator_exactly() {
        let (n, set) = rotator();
        let rep = analyze_coverage(&n, &set, &CoverageOptions::default()).unwrap();
        assert_eq!(rep.total_states, 4);
        assert_eq!(rep.unreachable, 1, "state 11 is unreachable");
        assert_eq!(rep.reachable, 3);
        assert_eq!(rep.unresolved, 0);
    }

    #[test]
    fn bfs_matches_on_tiny_design() {
        let (n, set) = rotator();
        let rep = bfs_coverage(&n, &set, 60, 1 << 20, &ReachOptions::default()).unwrap();
        assert_eq!(rep.unreachable, 1);
        assert_eq!(rep.abstract_registers, 2);
    }

    /// The rotator plus a gating register far away: with the gate stuck low,
    /// state 10 also becomes unreachable, but only an abstraction containing
    /// the (distant) gate register can see that.
    fn gated_rotator() -> (Netlist, CoverageSet, SignalId) {
        let mut n = Netlist::new("grot");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        // gate chain: g0 sticks at 0; g1 <- g0 (distance 2 from a).
        let g0 = n.add_register("g0", Some(false));
        n.set_register_next(g0, g0).unwrap();
        let g1 = n.add_register("g1", Some(false));
        n.set_register_next(g1, g0).unwrap();
        // next_a = b & g1 (never 1 in reality); next_b = !(a|b).
        let band = n.add_gate("band", GateOp::And, &[b, g1]);
        let nor_ab = n.add_gate("nor_ab", GateOp::Nor, &[a, b]);
        n.set_register_next(a, band).unwrap();
        n.set_register_next(b, nor_ab).unwrap();
        n.validate().unwrap();
        let set = CoverageSet::new("grot", [a, b]);
        (n, set, g1)
    }

    #[test]
    fn refinement_finds_distant_gating_registers() {
        let (n, set, g1) = gated_rotator();
        let rep = analyze_coverage(&n, &set, &CoverageOptions::default()).unwrap();
        // Real reachable states: 00 and 01 only (a can never rise).
        assert_eq!(rep.unreachable, 2, "10 and 11 are unreachable");
        assert_eq!(rep.reachable, 2);
        assert!(rep.abstract_registers >= 3, "refinement must add {g1:?}");
    }

    #[test]
    fn bfs_with_tiny_k_misses_the_gate() {
        let (n, set, _) = gated_rotator();
        // k=2: only the coverage registers themselves; the projection thinks
        // 10 is reachable (g1 free), so only 11 is proven unreachable.
        let rep = bfs_coverage(&n, &set, 2, 1 << 20, &ReachOptions::default()).unwrap();
        assert_eq!(rep.unreachable, 1);
        // With k large enough, BFS also finds both.
        let rep2 = bfs_coverage(&n, &set, 4, 1 << 20, &ReachOptions::default()).unwrap();
        assert_eq!(rep2.unreachable, 2);
    }

    #[test]
    fn rejects_non_register_coverage_signals() {
        let mut n = Netlist::new("bad");
        let i = n.add_input("i");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, i).unwrap();
        n.validate().unwrap();
        let set = CoverageSet::new("bad", [i]);
        assert!(analyze_coverage(&n, &set, &CoverageOptions::default()).is_err());
    }

    #[test]
    fn closest_registers_orders_by_distance() {
        let (n, set, g1) = gated_rotator();
        let picked = closest_registers(&n, &set.signals, 3);
        assert_eq!(picked.len(), 3);
        assert!(picked.contains(&set.signals[0]));
        assert!(picked.contains(&set.signals[1]));
        // The third closest is g1 (distance 1 from a via band).
        assert!(picked.contains(&g1));
    }
}
