//! Transitive fanin / fanout and cone-of-influence computations.

use crate::{NetKind, Netlist, SignalId};

/// Computes the *transitive fanin* of a set of root signals: the gates that
/// transitively drive the roots through other gates, stopping at register
/// outputs, primary inputs and constants (the paper's "transitive fanins up
/// to register outputs").
///
/// The returned struct partitions everything the cone touches.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, transitive_fanin};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let i = n.add_input("i");
/// let r = n.add_register("r", Some(false));
/// let g = n.add_gate("g", GateOp::And, &[i, r]);
/// n.set_register_next(r, g)?;
/// let cone = transitive_fanin(&n, [g]);
/// assert_eq!(cone.gates, vec![g]);
/// assert_eq!(cone.inputs, vec![i]);
/// assert_eq!(cone.register_leaves, vec![r]);
/// # Ok(())
/// # }
/// ```
pub fn transitive_fanin(netlist: &Netlist, roots: impl IntoIterator<Item = SignalId>) -> Cone {
    let mut seen = vec![false; netlist.num_signals()];
    let mut stack: Vec<SignalId> = Vec::new();
    for r in roots {
        if !seen[r.index()] {
            seen[r.index()] = true;
            stack.push(r);
        }
    }
    let mut cone = Cone::default();
    while let Some(s) = stack.pop() {
        match netlist.kind(s) {
            NetKind::Gate { fanins, .. } => {
                cone.gates.push(s);
                for &f in fanins {
                    if !seen[f.index()] {
                        seen[f.index()] = true;
                        stack.push(f);
                    }
                }
            }
            NetKind::Input => cone.inputs.push(s),
            NetKind::Register { .. } => cone.register_leaves.push(s),
            NetKind::Const(_) => cone.constants.push(s),
        }
    }
    cone.gates.sort_unstable();
    cone.inputs.sort_unstable();
    cone.register_leaves.sort_unstable();
    cone.constants.sort_unstable();
    cone
}

/// Result of [`transitive_fanin`]: the combinational cone above a set of
/// roots, partitioned by what terminates each path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cone {
    /// Gates inside the cone (including gate roots), ascending signal order.
    pub gates: Vec<SignalId>,
    /// Primary inputs the cone reads.
    pub inputs: Vec<SignalId>,
    /// Register outputs the cone reads (the cone stops here).
    pub register_leaves: Vec<SignalId>,
    /// Constant drivers the cone reads.
    pub constants: Vec<SignalId>,
}

/// Computes the set of gates transitively *driven by* any of the given
/// signals, through gates only (stopping at register data inputs).
///
/// Used by the free-cut computation of Section 2.2: the free-cut design
/// contains the gates in the intersection of the registers' transitive fanin
/// and transitive fanout.
pub fn transitive_fanout_gates(
    netlist: &Netlist,
    sources: impl IntoIterator<Item = SignalId>,
) -> Vec<SignalId> {
    // Build a reverse mapping source -> driven gates once.
    let mut driven = vec![false; netlist.num_signals()];
    for s in sources {
        driven[s.index()] = true;
    }
    // Propagate forward in topological order: a gate is driven if any fanin is.
    let order = netlist
        .topo_order()
        .expect("transitive_fanout_gates requires an acyclic netlist");
    let mut out = Vec::new();
    for g in order {
        if driven[g.index()] {
            continue;
        }
        if netlist.fanins(g).iter().any(|f| driven[f.index()]) {
            driven[g.index()] = true;
            out.push(g);
        }
    }
    out.sort_unstable();
    out
}

/// Cone of influence of a set of signals: every register and gate that can
/// affect them, crossing register boundaries transitively.
///
/// This is the paper's "COI" used both to size designs (Table 1 columns two
/// and three) and as the baseline reduction for plain symbolic model checking.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Coi};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let i = n.add_input("i");
/// let r1 = n.add_register("r1", Some(false));
/// let r2 = n.add_register("r2", Some(false)); // r2 never influences r1
/// let g = n.add_gate("g", GateOp::And, &[i, r1]);
/// n.set_register_next(r1, g)?;
/// n.set_register_next(r2, r1)?;
/// let coi = Coi::of(&n, [r1]);
/// assert_eq!(coi.num_registers(), 1);
/// assert!(coi.registers().contains(&r1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coi {
    registers: Vec<SignalId>,
    gates: Vec<SignalId>,
    inputs: Vec<SignalId>,
}

impl Coi {
    /// Computes the cone of influence of the given root signals.
    pub fn of(netlist: &Netlist, roots: impl IntoIterator<Item = SignalId>) -> Self {
        let mut seen = vec![false; netlist.num_signals()];
        let mut stack: Vec<SignalId> = Vec::new();
        for r in roots {
            if !seen[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
        let mut registers = Vec::new();
        let mut gates = Vec::new();
        let mut inputs = Vec::new();
        while let Some(s) = stack.pop() {
            let mut visit = |f: SignalId, stack: &mut Vec<SignalId>| {
                if !seen[f.index()] {
                    seen[f.index()] = true;
                    stack.push(f);
                }
            };
            match netlist.kind(s) {
                NetKind::Gate { fanins, .. } => {
                    gates.push(s);
                    for &f in fanins {
                        visit(f, &mut stack);
                    }
                }
                NetKind::Register { next, .. } => {
                    registers.push(s);
                    // Cross the register boundary: its data input influences it.
                    let n = next.expect("COI requires a validated netlist");
                    visit(n, &mut stack);
                }
                NetKind::Input => inputs.push(s),
                NetKind::Const(_) => {}
            }
        }
        registers.sort_unstable();
        gates.sort_unstable();
        inputs.sort_unstable();
        Coi {
            registers,
            gates,
            inputs,
        }
    }

    /// Registers in the cone of influence, ascending signal order.
    pub fn registers(&self) -> &[SignalId] {
        &self.registers
    }

    /// Gates in the cone of influence, ascending signal order.
    pub fn gates(&self) -> &[SignalId] {
        &self.gates
    }

    /// Primary inputs in the cone of influence, ascending signal order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Number of registers in the COI (Table 1, column two).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Number of gates in the COI (Table 1, column three).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateOp;

    /// Chain: i -> g1 -> r1 -> g2 -> r2, plus isolated r3.
    fn chain() -> (Netlist, [SignalId; 5]) {
        let mut n = Netlist::new("chain");
        let i = n.add_input("i");
        let r1 = n.add_register("r1", Some(false));
        let r2 = n.add_register("r2", Some(false));
        let r3 = n.add_register("r3", Some(false));
        let g1 = n.add_gate("g1", GateOp::Not, &[i]);
        let g2 = n.add_gate("g2", GateOp::Not, &[r1]);
        n.set_register_next(r1, g1).unwrap();
        n.set_register_next(r2, g2).unwrap();
        n.set_register_next(r3, r3).unwrap();
        n.validate().unwrap();
        (n, [i, r1, r2, g1, g2])
    }

    #[test]
    fn fanin_stops_at_registers() {
        let (n, [_, r1, _, _, g2]) = chain();
        let cone = transitive_fanin(&n, [g2]);
        assert_eq!(cone.gates, vec![g2]);
        assert_eq!(cone.register_leaves, vec![r1]);
        assert!(cone.inputs.is_empty());
    }

    #[test]
    fn fanin_of_register_output_is_just_the_leaf() {
        let (n, [_, r1, ..]) = chain();
        let cone = transitive_fanin(&n, [r1]);
        assert!(cone.gates.is_empty());
        assert_eq!(cone.register_leaves, vec![r1]);
    }

    #[test]
    fn coi_crosses_register_boundaries() {
        let (n, [i, r1, r2, g1, g2]) = chain();
        let coi = Coi::of(&n, [r2]);
        assert_eq!(coi.registers(), &[r1, r2]);
        assert_eq!(coi.gates(), &[g1, g2]);
        assert_eq!(coi.inputs(), &[i]);
    }

    #[test]
    fn coi_excludes_unrelated_registers() {
        let (n, [_, r1, ..]) = chain();
        let coi = Coi::of(&n, [r1]);
        assert_eq!(coi.num_registers(), 1);
        assert_eq!(coi.num_gates(), 1);
    }

    #[test]
    fn fanout_gates_follow_forward_paths() {
        let (n, [i, _, _, g1, g2]) = chain();
        let fo = transitive_fanout_gates(&n, [i]);
        // i drives g1 directly; g2 is behind a register so not comb. fanout.
        assert_eq!(fo, vec![g1]);
        let _ = g2;
    }

    #[test]
    fn fanout_of_register_output() {
        let (n, [_, r1, _, _, g2]) = chain();
        let fo = transitive_fanout_gates(&n, [r1]);
        assert_eq!(fo, vec![g2]);
    }
}
