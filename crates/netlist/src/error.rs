//! Error type shared by netlist construction, validation and parsing.

use std::fmt;

use crate::SignalId;

/// Error produced by netlist construction, validation or parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined twice.
    DuplicateName(String),
    /// A referenced signal name is not defined.
    UnknownName(String),
    /// A signal id does not exist in this netlist.
    UnknownSignal(SignalId),
    /// The signal is not a register but was used where one is required.
    NotARegister(SignalId),
    /// A register's next-state input was never assigned.
    UnconnectedRegister(SignalId),
    /// A register's next-state input was assigned twice.
    NextAlreadySet(SignalId),
    /// A gate has a fanin count outside its operator's arity.
    BadArity {
        /// The offending gate's output signal.
        signal: SignalId,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational logic contains a cycle through the given signal.
    CombinationalCycle(SignalId),
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "signal name `{n}` defined twice"),
            NetlistError::UnknownName(n) => write!(f, "unknown signal name `{n}`"),
            NetlistError::UnknownSignal(s) => write!(f, "unknown signal {s}"),
            NetlistError::NotARegister(s) => write!(f, "signal {s} is not a register"),
            NetlistError::UnconnectedRegister(s) => {
                write!(f, "register {s} has no next-state input")
            }
            NetlistError::NextAlreadySet(s) => {
                write!(f, "register {s} next-state input assigned twice")
            }
            NetlistError::BadArity { signal, got } => {
                write!(f, "gate {signal} has invalid fanin count {got}")
            }
            NetlistError::CombinationalCycle(s) => {
                write!(f, "combinational cycle through signal {s}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
