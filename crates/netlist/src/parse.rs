//! A small line-oriented text format for netlists.
//!
//! The format exists so benchmark designs can be dumped, diffed and reloaded.
//! One declaration per line; `#` starts a comment; blank lines are ignored:
//!
//! ```text
//! design counter
//! input  en
//! const  zero 0
//! gate   n0 not b0
//! gate   n1 xor b0 b1
//! reg    b0 0 n0        # name init(0|1|x) next-signal
//! reg    b1 0 n1
//! output carry n1
//! ```
//!
//! Signals may be referenced before they are declared (necessary for
//! sequential feedback), so parsing is two-pass.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{GateOp, NetKind, Netlist, NetlistError, SignalId};

/// Parses a netlist from its text representation.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with a 1-based line number) for malformed
/// lines, and any structural error that [`Netlist::validate`] reports for the
/// assembled design.
///
/// # Example
///
/// ```
/// use rfn_netlist::parse_netlist;
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let text = "design t\ninput a\nreg r x a\noutput q r\n";
/// let n = parse_netlist(text)?;
/// assert_eq!(n.name(), "t");
/// assert_eq!(n.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist(text: &str) -> Result<Netlist, NetlistError> {
    enum Decl<'a> {
        Input(&'a str),
        Const(&'a str, bool),
        Gate(&'a str, GateOp, Vec<&'a str>),
        Reg(&'a str, Option<bool>, &'a str),
        Output(&'a str, &'a str),
    }
    let err = |line: usize, message: &str| NetlistError::Parse {
        line,
        message: message.to_owned(),
    };

    let mut design_name = String::from("unnamed");
    let mut decls: Vec<(usize, Decl)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let kw = toks.next().expect("non-empty line has a token");
        match kw {
            "design" => {
                design_name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "design needs a name"))?
                    .to_owned();
            }
            "input" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "input needs a name"))?;
                decls.push((lineno, Decl::Input(name)));
            }
            "const" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "const needs a name"))?;
                let v = match toks.next() {
                    Some("0") => false,
                    Some("1") => true,
                    _ => return Err(err(lineno, "const value must be 0 or 1")),
                };
                decls.push((lineno, Decl::Const(name, v)));
            }
            "gate" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "gate needs a name"))?;
                let op: GateOp = toks
                    .next()
                    .ok_or_else(|| err(lineno, "gate needs an operator"))?
                    .parse()
                    .map_err(|e| err(lineno, &format!("{e}")))?;
                let fanins: Vec<&str> = toks.collect();
                if fanins.is_empty() {
                    return Err(err(lineno, "gate needs at least one fanin"));
                }
                decls.push((lineno, Decl::Gate(name, op, fanins)));
            }
            "reg" => {
                let name = toks.next().ok_or_else(|| err(lineno, "reg needs a name"))?;
                let init = match toks.next() {
                    Some("0") => Some(false),
                    Some("1") => Some(true),
                    Some("x") | Some("X") => None,
                    _ => return Err(err(lineno, "reg init must be 0, 1 or x")),
                };
                let next = toks
                    .next()
                    .ok_or_else(|| err(lineno, "reg needs a next-state signal"))?;
                decls.push((lineno, Decl::Reg(name, init, next)));
            }
            "output" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "output needs a name"))?;
                let sig = toks
                    .next()
                    .ok_or_else(|| err(lineno, "output needs a signal"))?;
                decls.push((lineno, Decl::Output(name, sig)));
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }

    // Pass 1: create nets with placeholder references.
    let mut netlist = Netlist::new(design_name);
    let mut names: HashMap<&str, SignalId> = HashMap::new();
    let placeholder = SignalId::from_index(0);
    for (lineno, decl) in &decls {
        let (name, id) = match decl {
            Decl::Input(name) => (*name, netlist.add_input(name)),
            Decl::Const(name, v) => (*name, netlist.add_const(name, *v)),
            Decl::Gate(name, op, fanins) => (
                *name,
                netlist.add_gate(name, *op, &vec![placeholder; fanins.len()]),
            ),
            Decl::Reg(name, init, _) => (*name, netlist.add_register(name, *init)),
            Decl::Output(..) => continue,
        };
        if names.insert(name, id).is_some() {
            return Err(NetlistError::Parse {
                line: *lineno,
                message: format!("signal `{name}` defined twice"),
            });
        }
    }
    // Pass 2: resolve references.
    let resolve = |name: &str, line: usize| -> Result<SignalId, NetlistError> {
        names.get(name).copied().ok_or_else(|| NetlistError::Parse {
            line,
            message: format!("unknown signal `{name}`"),
        })
    };
    for (lineno, decl) in &decls {
        match decl {
            Decl::Gate(name, op, fanin_names) => {
                let mut fanins = Vec::with_capacity(fanin_names.len());
                for f in fanin_names {
                    fanins.push(resolve(f, *lineno)?);
                }
                let id = names[*name];
                // Rebuild the gate in place through the public-ish API: we
                // re-create the kind directly since fanins were placeholders.
                netlist.replace_gate_fanins(id, *op, fanins);
            }
            Decl::Reg(name, _, next_name) => {
                let next = resolve(next_name, *lineno)?;
                let id = names[*name];
                netlist.set_register_next(id, next)?;
            }
            Decl::Output(name, sig_name) => {
                let sig = resolve(sig_name, *lineno)?;
                netlist.add_output(*name, sig);
            }
            _ => {}
        }
    }
    netlist.validate()?;
    Ok(netlist)
}

/// Serializes a netlist to the text format accepted by [`parse_netlist`].
///
/// Anonymous nets are emitted under their `s<index>` labels, so the output
/// always round-trips (up to renaming) through the parser.
///
/// # Example
///
/// ```
/// use rfn_netlist::{parse_netlist, write_netlist};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let n = parse_netlist("design t\ninput a\nreg r 0 a\n")?;
/// let text = write_netlist(&n);
/// let n2 = parse_netlist(&text)?;
/// assert_eq!(n2.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {}", netlist.name());
    for s in netlist.signals() {
        let label = netlist.label(s);
        match netlist.kind(s) {
            NetKind::Input => {
                let _ = writeln!(out, "input {label}");
            }
            NetKind::Const(v) => {
                let _ = writeln!(out, "const {label} {}", u8::from(*v));
            }
            NetKind::Gate { op, fanins } => {
                let _ = write!(out, "gate {label} {op}");
                for f in fanins {
                    let _ = write!(out, " {}", netlist.label(*f));
                }
                out.push('\n');
            }
            NetKind::Register { init, next } => {
                let init_s = match init {
                    Some(false) => "0",
                    Some(true) => "1",
                    None => "x",
                };
                let next_label = next
                    .map(|n| netlist.label(n))
                    .unwrap_or_else(|| "?".to_owned());
                let _ = writeln!(out, "reg {label} {init_s} {next_label}");
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        let _ = writeln!(out, "output {name} {}", netlist.label(*sig));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
design counter
input en
gate n0 xor b0 en
gate carry and b0 b1
gate n1 xor b0 b1
reg b0 0 n0
reg b1 0 n1
output carry carry
";

    #[test]
    fn parse_sample() {
        let n = parse_netlist(SAMPLE).unwrap();
        assert_eq!(n.name(), "counter");
        assert_eq!(n.num_registers(), 2);
        assert_eq!(n.num_gates(), 3);
        assert_eq!(n.outputs().len(), 1);
        let b0 = n.find("b0").unwrap();
        assert_eq!(n.register_init(b0), Some(false));
        assert_eq!(n.register_next(b0), n.find("n0").unwrap());
    }

    #[test]
    fn round_trip() {
        let n = parse_netlist(SAMPLE).unwrap();
        let text = write_netlist(&n);
        let n2 = parse_netlist(&text).unwrap();
        assert_eq!(n2.num_registers(), n.num_registers());
        assert_eq!(n2.num_gates(), n.num_gates());
        assert_eq!(n2.inputs().len(), n.inputs().len());
        // Semantics preserved structurally: every named signal resolves the
        // same way.
        for s in n.signals() {
            let name = n.signal_name(s);
            if !name.is_empty() {
                assert!(n2.find(name).is_some(), "{name} lost in round trip");
            }
        }
    }

    #[test]
    fn forward_references_resolve() {
        let text = "design f\nreg r 1 g\ngate g not r\n";
        let n = parse_netlist(text).unwrap();
        let r = n.find("r").unwrap();
        assert_eq!(n.register_next(r), n.find("g").unwrap());
    }

    #[test]
    fn unknown_signal_is_reported_with_line() {
        let text = "design f\ngate g not missing\n";
        match parse_netlist(text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("missing"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_keyword_rejected() {
        assert!(matches!(
            parse_netlist("design f\nfrobnicate x\n"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn bad_init_rejected() {
        assert!(parse_netlist("design f\ninput a\nreg r 2 a\n").is_err());
    }

    #[test]
    fn duplicate_definition_rejected() {
        assert!(parse_netlist("design f\ninput a\ninput a\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\ndesign t\n\ninput a # trailing\nreg r x a\n";
        let n = parse_netlist(text).unwrap();
        assert_eq!(n.num_registers(), 1);
        let r = n.find("r").unwrap();
        assert_eq!(n.register_init(r), None);
    }

    #[test]
    fn x_init_round_trips() {
        let n = parse_netlist("design t\ninput a\nreg r x a\n").unwrap();
        let text = write_netlist(&n);
        assert!(text.contains("reg r x a"));
    }
}
