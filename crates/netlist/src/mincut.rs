//! Free-cut and min-cut designs (Section 2.2 of the paper).
//!
//! Pre-image computation on an abstract model with thousands of free inputs
//! is hopeless, so RFN computes pre-images on a *min-cut design* `MC` instead:
//! a subcircuit of the abstract model `N` that contains the *free-cut design*
//! `FC` (the registers of `N` plus the gates in the intersection of the
//! registers' transitive fanin and transitive fanout) and has the smallest
//! possible number of primary inputs.
//!
//! The minimal input set is a minimum vertex cut between the free inputs of
//! `N` and `FC` in the signal graph, computed here with Dinic's max-flow
//! algorithm on the node-split graph (every candidate cut signal becomes an
//! `in → out` edge of capacity one).

use crate::{AbstractView, Netlist, SignalId};

/// The free-cut design `FC` of an abstract model: the model's registers plus
/// the gates lying in the intersection of the registers' transitive fanin and
/// transitive fanout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreeCut {
    /// Gates of `FC`, in ascending signal order.
    pub gates: Vec<SignalId>,
}

/// Computes the free-cut design of an abstract model.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Abstraction, compute_free_cut};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let i = n.add_input("i");
/// let r = n.add_register("r", Some(false));
/// let pre = n.add_gate("pre", GateOp::Not, &[i]);     // input-only logic
/// let loopg = n.add_gate("loop", GateOp::And, &[r, pre]); // state feedback
/// n.set_register_next(r, loopg)?;
/// n.validate()?;
/// let view = Abstraction::from_registers([r]).view(&n, [])?;
/// let fc = compute_free_cut(&n, &view);
/// assert_eq!(fc.gates, vec![loopg]); // `pre` is outside the free cut
/// # Ok(())
/// # }
/// ```
pub fn compute_free_cut(netlist: &Netlist, view: &AbstractView) -> FreeCut {
    let n = netlist.num_signals();
    // Transitive fanout of register outputs, restricted to view gates.
    let mut in_fanout = vec![false; n];
    for &r in view.registers() {
        in_fanout[r.index()] = true;
    }
    for &g in view.gates() {
        // view gates are already topologically ordered
        if netlist.fanins(g).iter().any(|f| in_fanout[f.index()]) {
            in_fanout[g.index()] = true;
        }
    }
    // Transitive fanin of the registers' next-state inputs, restricted to the
    // view. Walk view gates in reverse topological order.
    let mut in_fanin = vec![false; n];
    for &r in view.registers() {
        in_fanin[netlist.register_next(r).index()] = true;
    }
    for &g in view.gates().iter().rev() {
        if in_fanin[g.index()] {
            for &f in netlist.fanins(g) {
                in_fanin[f.index()] = true;
            }
        }
    }
    let gates: Vec<SignalId> = {
        let mut gs: Vec<SignalId> = view
            .gates()
            .iter()
            .copied()
            .filter(|g| in_fanout[g.index()] && in_fanin[g.index()])
            .collect();
        gs.sort_unstable();
        gs
    };
    FreeCut { gates }
}

/// The min-cut design `MC` of an abstract model: the free-cut design plus the
/// logic between the cut and the free-cut, with [`MinCut::cut_signals`] as its
/// primary inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// The primary inputs of `MC`: a minimum set of signals separating the
    /// abstract model's free inputs from the free-cut design. A cut signal is
    /// either a free input of `N` (then it appears in *no-cut* cubes) or an
    /// internal gate output of `N` (then it appears in *min-cut* cubes,
    /// Figure 1 of the paper).
    pub cut_signals: Vec<SignalId>,
    /// Gates of `MC` in topological order: every view gate on the free-cut
    /// side of the cut.
    pub gates: Vec<SignalId>,
    /// Number of primary inputs the abstract model had before the cut
    /// (`inputs + pseudo_inputs`), kept for reporting input reduction.
    pub original_input_count: usize,
}

impl MinCut {
    /// Whether a signal is one of the min-cut design's primary inputs.
    pub fn is_cut_signal(&self, s: SignalId) -> bool {
        self.cut_signals.binary_search(&s).is_ok()
    }

    /// Number of primary inputs of the min-cut design.
    pub fn num_inputs(&self) -> usize {
        self.cut_signals.len()
    }
}

/// Computes the min-cut design of an abstract model.
///
/// The returned cut is minimal in cardinality; ties are broken arbitrarily by
/// the max-flow search order. The cut never exceeds the number of free inputs
/// of the view (the trivial cut).
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Abstraction, compute_min_cut};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// // 4 inputs funnel through one AND before reaching the register.
/// let inputs: Vec<_> = (0..4).map(|k| n.add_input(&format!("i{k}"))).collect();
/// let funnel = n.add_gate("funnel", GateOp::And, &inputs);
/// let r = n.add_register("r", Some(false));
/// let upd = n.add_gate("upd", GateOp::Or, &[r, funnel]);
/// n.set_register_next(r, upd)?;
/// n.validate()?;
/// let view = Abstraction::from_registers([r]).view(&n, [])?;
/// let mc = compute_min_cut(&n, &view);
/// assert_eq!(mc.cut_signals, vec![funnel]); // 4 inputs reduced to 1
/// assert_eq!(mc.original_input_count, 4);
/// # Ok(())
/// # }
/// ```
pub fn compute_min_cut(netlist: &Netlist, view: &AbstractView) -> MinCut {
    let fc = compute_free_cut(netlist, view);
    compute_min_cut_with_free_cut(netlist, view, &fc)
}

/// Like [`compute_min_cut`], reusing an already-computed free cut.
pub fn compute_min_cut_with_free_cut(
    netlist: &Netlist,
    view: &AbstractView,
    fc: &FreeCut,
) -> MinCut {
    let n = netlist.num_signals();
    let mut in_fc = vec![false; n];
    for &g in &fc.gates {
        in_fc[g.index()] = true;
    }
    for &r in view.registers() {
        in_fc[r.index()] = true;
    }
    // Consumers on the FC side: FC gates and register data inputs. Their
    // non-FC, non-constant fanins are the "boundary signals" that the cut must
    // feed.
    let mut boundary: Vec<SignalId> = Vec::new();
    let is_const = |s: SignalId| matches!(netlist.kind(s), crate::NetKind::Const(_));
    {
        let mut seen = vec![false; n];
        let add = |s: SignalId, boundary: &mut Vec<SignalId>, seen: &mut Vec<bool>| {
            if !in_fc[s.index()] && !is_const(s) && !seen[s.index()] {
                seen[s.index()] = true;
                boundary.push(s);
            }
        };
        for &g in &fc.gates {
            for &f in netlist.fanins(g) {
                add(f, &mut boundary, &mut seen);
            }
        }
        for &r in view.registers() {
            add(netlist.register_next(r), &mut boundary, &mut seen);
        }
    }
    let original_input_count = view.inputs().len() + view.pseudo_inputs().len();
    if boundary.is_empty() {
        // Registers feed each other (or constants) directly; MC is FC itself.
        // Filtering the view's gate list preserves topological order.
        let gates: Vec<SignalId> = view
            .gates()
            .iter()
            .copied()
            .filter(|g| in_fc[g.index()])
            .collect();
        return MinCut {
            cut_signals: Vec::new(),
            gates,
            original_input_count,
        };
    }

    // Upstream region: transitive fanin of the boundary signals within the
    // view, excluding FC members. These are the candidate cut signals.
    let mut upstream = vec![false; n];
    {
        let mut stack: Vec<SignalId> = boundary.clone();
        for &b in &boundary {
            upstream[b.index()] = true;
        }
        while let Some(s) = stack.pop() {
            for &f in netlist.fanins(s) {
                if !in_fc[f.index()] && !is_const(f) && !upstream[f.index()] {
                    upstream[f.index()] = true;
                    stack.push(f);
                }
            }
        }
    }

    // Build the node-split flow graph over the upstream region.
    // Node ids: for upstream signal s -> in = 2*slot, out = 2*slot+1.
    let mut slot = vec![usize::MAX; n];
    let mut region: Vec<SignalId> = Vec::new();
    for idx in 0..n {
        if upstream[idx] {
            slot[idx] = region.len();
            region.push(SignalId::from_index(idx));
        }
    }
    let source = 2 * region.len();
    let sink = source + 1;
    let mut flow = Dinic::new(sink + 1);
    const INF: u32 = u32::MAX / 2;
    for &s in &region {
        let k = slot[s.index()];
        flow.add_edge(2 * k, 2 * k + 1, 1);
        // Sources: signals with no upstream fanins (free inputs of N, or
        // gates whose fanins are all constants / outside the region).
        let has_upstream_fanin = netlist.fanins(s).iter().any(|f| upstream[f.index()]);
        if !has_upstream_fanin {
            flow.add_edge(source, 2 * k, INF);
        } else {
            for &f in netlist.fanins(s) {
                if upstream[f.index()] {
                    flow.add_edge(2 * slot[f.index()] + 1, 2 * k, INF);
                }
            }
        }
    }
    for &b in &boundary {
        flow.add_edge(2 * slot[b.index()] + 1, sink, INF);
    }
    flow.max_flow(source, sink);
    let reachable = flow.residual_reachable(source);

    let mut cut_signals: Vec<SignalId> = region
        .iter()
        .copied()
        .filter(|s| {
            let k = slot[s.index()];
            reachable[2 * k] && !reachable[2 * k + 1]
        })
        .collect();
    cut_signals.sort_unstable();

    // MC gates: FC gates plus upstream gates strictly downstream of the cut
    // (their `in` node is unreachable from the source in the residual graph).
    let gates: Vec<SignalId> = view
        .gates()
        .iter()
        .copied()
        .filter(|g| {
            if in_fc[g.index()] {
                return true;
            }
            if !upstream[g.index()] {
                return false;
            }
            !reachable[2 * slot[g.index()]]
        })
        .collect();

    MinCut {
        cut_signals,
        gates,
        original_input_count,
    }
}

/// Dinic max-flow on a small adjacency-list graph with u32 capacities.
struct Dinic {
    // edges stored flat; edge i and i^1 are a forward/backward pair
    to: Vec<u32>,
    cap: Vec<u32>,
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: u32) {
        let e = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.adj[u].push(e);
        self.to.push(u as u32);
        self.cap.push(0);
        self.adj[v].push(e + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: u32) -> u32 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.adj[u].len() {
            let e = self.adj[u][self.iter[u]] as usize;
            let v = self.to[e] as usize;
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> u32 {
        let mut total = 0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, u32::MAX / 2);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }

    /// Nodes reachable from `s` in the residual graph (call after max_flow).
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.adj[u] {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abstraction, GateOp};

    /// Funnel: many inputs reduce through a tree to few signals before FC.
    fn funnel_design(width: usize) -> (Netlist, SignalId, Vec<SignalId>) {
        let mut n = Netlist::new("funnel");
        let inputs: Vec<_> = (0..width).map(|k| n.add_input(&format!("i{k}"))).collect();
        let funnel = n.add_gate("funnel", GateOp::Xor, &inputs);
        let r = n.add_register("r", Some(false));
        let upd = n.add_gate("upd", GateOp::Xor, &[r, funnel]);
        n.set_register_next(r, upd).unwrap();
        n.validate().unwrap();
        (n, r, inputs)
    }

    #[test]
    fn funnel_cut_is_single_signal() {
        let (n, r, _) = funnel_design(8);
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let mc = compute_min_cut(&n, &view);
        assert_eq!(mc.num_inputs(), 1);
        assert_eq!(mc.original_input_count, 8);
        let funnel = n.find("funnel").unwrap();
        assert_eq!(mc.cut_signals, vec![funnel]);
        // MC contains the update gate but not the funnel gate.
        let upd = n.find("upd").unwrap();
        assert!(mc.gates.contains(&upd));
        assert!(!mc.gates.contains(&funnel));
    }

    #[test]
    fn free_cut_excludes_input_only_logic() {
        let (n, r, _) = funnel_design(4);
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let fc = compute_free_cut(&n, &view);
        let upd = n.find("upd").unwrap();
        assert_eq!(fc.gates, vec![upd]);
    }

    #[test]
    fn cut_never_exceeds_trivial_cut() {
        // Wide but shallow: inputs feed the register logic directly.
        let mut n = Netlist::new("wide");
        let inputs: Vec<_> = (0..5).map(|k| n.add_input(&format!("i{k}"))).collect();
        let r = n.add_register("r", Some(false));
        let mut all = vec![r];
        all.extend(&inputs);
        let upd = n.add_gate("upd", GateOp::And, &all);
        n.set_register_next(r, upd).unwrap();
        n.validate().unwrap();
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let mc = compute_min_cut(&n, &view);
        assert!(mc.num_inputs() <= 5);
        // Inputs feed FC directly, so the cut is exactly the inputs.
        assert_eq!(mc.num_inputs(), 5);
    }

    #[test]
    fn register_to_register_design_needs_no_cut() {
        let mut n = Netlist::new("r2r");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(true));
        n.set_register_next(a, b).unwrap();
        n.set_register_next(b, a).unwrap();
        n.validate().unwrap();
        let view = Abstraction::from_registers([a, b]).view(&n, []).unwrap();
        let mc = compute_min_cut(&n, &view);
        assert!(mc.cut_signals.is_empty());
    }

    #[test]
    fn cut_separates_inputs_from_free_cut() {
        // Validity: removing the cut signals must disconnect every free input
        // from the free-cut consumers.
        let (n, r, inputs) = funnel_design(6);
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let fc = compute_free_cut(&n, &view);
        let mc = compute_min_cut(&n, &view);
        // Forward reachability from inputs, blocked at cut signals.
        let mut reach = vec![false; n.num_signals()];
        for &i in &inputs {
            if !mc.is_cut_signal(i) {
                reach[i.index()] = true;
            }
        }
        for &g in view.gates() {
            if mc.is_cut_signal(g) {
                continue;
            }
            if n.fanins(g).iter().any(|f| reach[f.index()]) {
                reach[g.index()] = true;
            }
        }
        for &g in &fc.gates {
            assert!(!reach[g.index()], "free-cut gate reachable around the cut");
        }
        for &reg in view.registers() {
            assert!(!reach[n.register_next(reg).index()]);
        }
    }

    #[test]
    fn diamond_cut_picks_the_narrow_waist() {
        // i0,i1 -> a ; i2,i3 -> b ; a,b -> waist ; waist,r -> upd -> r
        let mut n = Netlist::new("diamond");
        let i0 = n.add_input("i0");
        let i1 = n.add_input("i1");
        let i2 = n.add_input("i2");
        let i3 = n.add_input("i3");
        let a = n.add_gate("a", GateOp::And, &[i0, i1]);
        let b = n.add_gate("b", GateOp::Or, &[i2, i3]);
        let waist = n.add_gate("waist", GateOp::Xor, &[a, b]);
        let r = n.add_register("r", Some(false));
        let upd = n.add_gate("upd", GateOp::Or, &[r, waist]);
        n.set_register_next(r, upd).unwrap();
        n.validate().unwrap();
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let mc = compute_min_cut(&n, &view);
        assert_eq!(mc.cut_signals, vec![waist]);
    }

    #[test]
    fn dinic_computes_textbook_flow() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3);
        d.add_edge(0, 2, 2);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 2);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 5);
    }
}
