//! Signal identifiers and gate operators.

use std::fmt;

/// Dense identifier of a *signal* in a [`Netlist`](crate::Netlist).
///
/// Every net (primary input, constant, gate output or register output) is a
/// signal; `SignalId` indexes into the netlist's net table. Identifiers are
/// only meaningful relative to the netlist that produced them.
///
/// # Example
///
/// ```
/// use rfn_netlist::Netlist;
///
/// let mut n = Netlist::new("d");
/// let a = n.add_input("a");
/// assert_eq!(a.index(), 0);
/// assert_eq!(format!("{a}"), "s0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Creates a signal identifier from a raw index.
    ///
    /// Intended for engines that maintain dense side tables keyed by signal
    /// index; the caller is responsible for the index being in range for the
    /// netlist it is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SignalId(index as u32)
    }

    /// Returns the dense index of this signal, usable as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Boolean operator computed by a gate.
///
/// `And`, `Nand`, `Or`, `Nor`, `Xor` and `Xnor` accept one or more fanins
/// (`Xor`/`Xnor` fold left). `Not` and `Buf` are unary. [`GateOp::Mux`] takes
/// exactly three fanins `[sel, d0, d1]` and computes `sel ? d1 : d0`.
///
/// # Example
///
/// ```
/// use rfn_netlist::GateOp;
///
/// assert_eq!(GateOp::And.mnemonic(), "and");
/// assert_eq!("nor".parse::<GateOp>(), Ok(GateOp::Nor));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Identity of a single fanin.
    Buf,
    /// Negation of a single fanin.
    Not,
    /// Conjunction of all fanins.
    And,
    /// Negated conjunction of all fanins.
    Nand,
    /// Disjunction of all fanins.
    Or,
    /// Negated disjunction of all fanins.
    Nor,
    /// Parity (left fold of exclusive-or) of all fanins.
    Xor,
    /// Negated parity of all fanins.
    Xnor,
    /// Two-way multiplexer over fanins `[sel, d0, d1]`: `sel ? d1 : d0`.
    Mux,
}

impl GateOp {
    /// Returns the lower-case mnemonic used by the text netlist format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateOp::Buf => "buf",
            GateOp::Not => "not",
            GateOp::And => "and",
            GateOp::Nand => "nand",
            GateOp::Or => "or",
            GateOp::Nor => "nor",
            GateOp::Xor => "xor",
            GateOp::Xnor => "xnor",
            GateOp::Mux => "mux",
        }
    }

    /// Returns the valid fanin arity range `(min, max)` for this operator,
    /// where `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateOp::Buf | GateOp::Not => (1, 1),
            GateOp::Mux => (3, 3),
            GateOp::And | GateOp::Nand | GateOp::Or | GateOp::Nor | GateOp::Xor | GateOp::Xnor => {
                (1, usize::MAX)
            }
        }
    }

    /// Evaluates the operator over concrete boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if `vals` violates the operator's arity.
    pub fn eval(self, vals: &[bool]) -> bool {
        match self {
            GateOp::Buf => vals[0],
            GateOp::Not => !vals[0],
            GateOp::And => vals.iter().all(|&v| v),
            GateOp::Nand => !vals.iter().all(|&v| v),
            GateOp::Or => vals.iter().any(|&v| v),
            GateOp::Nor => !vals.iter().any(|&v| v),
            GateOp::Xor => vals.iter().fold(false, |a, &v| a ^ v),
            GateOp::Xnor => !vals.iter().fold(false, |a, &v| a ^ v),
            GateOp::Mux => {
                if vals[0] {
                    vals[2]
                } else {
                    vals[1]
                }
            }
        }
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl std::str::FromStr for GateOp {
    type Err = ParseGateOpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "buf" => GateOp::Buf,
            "not" => GateOp::Not,
            "and" => GateOp::And,
            "nand" => GateOp::Nand,
            "or" => GateOp::Or,
            "nor" => GateOp::Nor,
            "xor" => GateOp::Xor,
            "xnor" => GateOp::Xnor,
            "mux" => GateOp::Mux,
            _ => return Err(ParseGateOpError(s.to_owned())),
        })
    }
}

/// Error returned when parsing an unknown gate operator mnemonic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGateOpError(pub(crate) String);

impl fmt::Display for ParseGateOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate operator `{}`", self.0)
    }
}

impl std::error::Error for ParseGateOpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_id_round_trips_index() {
        let s = SignalId::from_index(42);
        assert_eq!(s.index(), 42);
        assert_eq!(format!("{s}"), "s42");
        assert_eq!(format!("{s:?}"), "s42");
    }

    #[test]
    fn gate_op_mnemonics_parse_back() {
        for op in [
            GateOp::Buf,
            GateOp::Not,
            GateOp::And,
            GateOp::Nand,
            GateOp::Or,
            GateOp::Nor,
            GateOp::Xor,
            GateOp::Xnor,
            GateOp::Mux,
        ] {
            assert_eq!(op.mnemonic().parse::<GateOp>(), Ok(op));
        }
        assert!("frob".parse::<GateOp>().is_err());
    }

    #[test]
    fn eval_matches_truth_tables() {
        assert!(GateOp::And.eval(&[true, true]));
        assert!(!GateOp::And.eval(&[true, false]));
        assert!(GateOp::Nand.eval(&[true, false]));
        assert!(GateOp::Or.eval(&[false, true]));
        assert!(!GateOp::Nor.eval(&[false, true]));
        assert!(GateOp::Xor.eval(&[true, false, false]));
        assert!(!GateOp::Xor.eval(&[true, true, false, false]));
        assert!(GateOp::Xnor.eval(&[true, true]));
        assert!(!GateOp::Not.eval(&[true]));
        assert!(GateOp::Buf.eval(&[true]));
        // mux: [sel, d0, d1]
        assert!(GateOp::Mux.eval(&[false, true, false]));
        assert!(!GateOp::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(GateOp::Not.arity(), (1, 1));
        assert_eq!(GateOp::Mux.arity(), (3, 3));
        assert_eq!(GateOp::And.arity().0, 1);
    }
}
