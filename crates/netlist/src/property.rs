//! Unreachability properties and coverage-signal sets.

use crate::{Netlist, SignalId};

/// An *unreachability property*: the states in which `signal == value` holds
/// must not be reachable from the initial states.
///
/// Safety properties are modeled the paper's way: a watchdog circuit asserts
/// an output when the property is violated, and the property says the
/// watchdog never fires. The target signal is usually a watchdog register,
/// but any signal of the design is accepted (for combinational targets the
/// "bad states" are those from which some input valuation asserts the
/// signal).
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, Property};
///
/// let mut n = Netlist::new("d");
/// let w = n.add_register("watchdog", Some(false));
/// let p = Property::never(&n, "no_fire", w);
/// assert_eq!(p.name, "no_fire");
/// assert!(p.value);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Property {
    /// Short name used in reports (e.g. `mutex`, `error_flag`).
    pub name: String,
    /// The watched signal.
    pub signal: SignalId,
    /// The asserted value that must be unreachable.
    pub value: bool,
}

impl Property {
    /// Property "`signal` is never 1" (the usual watchdog form).
    ///
    /// The netlist argument pins the signal to a design at the call site; it
    /// is otherwise unused.
    pub fn never(_netlist: &Netlist, name: impl Into<String>, signal: SignalId) -> Self {
        Property {
            name: name.into(),
            signal,
            value: true,
        }
    }

    /// Property "`signal` never takes `value`".
    pub fn never_value(name: impl Into<String>, signal: SignalId, value: bool) -> Self {
        Property {
            name: name.into(),
            signal,
            value,
        }
    }
}

/// A set of *coverage signals* for unreachable-coverage-state analysis
/// (Table 2 of the paper). A coverage state is one combination of values of
/// the coverage signals; the analysis classifies each of the `2^n`
/// combinations as reachable or unreachable on the original design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageSet {
    /// Code name of the set (e.g. `IU1`, `USB2`).
    pub name: String,
    /// The coverage signals (register outputs, per the paper's selection).
    pub signals: Vec<SignalId>,
}

impl CoverageSet {
    /// Creates a coverage set.
    pub fn new(name: impl Into<String>, signals: impl IntoIterator<Item = SignalId>) -> Self {
        CoverageSet {
            name: name.into(),
            signals: signals.into_iter().collect(),
        }
    }

    /// Number of coverage states (`2^n` for `n` signals).
    pub fn num_states(&self) -> u64 {
        1u64 << self.signals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_constructors() {
        let mut n = Netlist::new("d");
        let w = n.add_register("w", Some(false));
        let p = Property::never(&n, "p", w);
        assert_eq!(p.signal, w);
        assert!(p.value);
        let q = Property::never_value("q", w, false);
        assert!(!q.value);
    }

    #[test]
    fn coverage_state_counts() {
        let mut n = Netlist::new("d");
        let sigs: Vec<_> = (0..10)
            .map(|k| n.add_register(&format!("c{k}"), Some(false)))
            .collect();
        let cs = CoverageSet::new("IU1", sigs);
        assert_eq!(cs.num_states(), 1024);
    }
}
