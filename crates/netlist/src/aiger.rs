//! AIGER reader and writer (ascii `.aag` and binary `.aig`).
//!
//! AIGER is the exchange format of the hardware model-checking community
//! (HWMCC); this module maps it onto the crate's [`Netlist`]/[`Property`]
//! model with zero external dependencies:
//!
//! * AIGER *latches* become [`Netlist`] registers; latch reset values map to
//!   register init values (`0` → `Some(false)`, `1` → `Some(true)`, the
//!   latch's own literal → `None`, i.e. an unconstrained reset).
//! * AIGER *and* gates become [`GateOp::And`] gates; complemented literals
//!   materialize shared [`GateOp::Not`] gates.
//! * AIGER 1.9 *bad state* literals (`B` section) become safety
//!   [`Property`]s. Files without a `B` header field use the pre-1.9 HWMCC
//!   convention: every *output* is treated as a bad-state property (and kept
//!   as an output).
//! * Invariant constraints, justice and fairness sections (`C`/`J`/`F`) are
//!   rejected — the verifier handles plain safety only.
//!
//! The writer lowers arbitrary [`GateOp`]s (XOR, MUX, …) to and-inverter
//! form with structural hashing and constant folding, so any validated
//! netlist round-trips through `.aag`/`.aig`. Gate *names* are not
//! representable in AIGER symbol tables (only inputs, latches, outputs and
//! bad literals carry symbols), so a round-trip preserves structure and
//! I/O names, not internal net names.
//!
//! Parse failures report a 1-based line number and a 0-based byte offset
//! through [`ParseError`] (binary sections report the line of the byte
//! stream's start).

use std::collections::HashMap;
use std::fmt;

use crate::netlist::NetKind;
use crate::property::Property;
use crate::signal::{GateOp, SignalId};
use crate::{Netlist, NetlistError};

/// A parse error with source location, shared by the AIGER and DIMACS
/// readers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input (0 when unknown).
    pub line: usize,
    /// 0-based byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given location.
    pub fn new(line: usize, offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "byte {}: {}", self.offset, self.message)
        } else {
            write!(
                f,
                "line {}, byte {}: {}",
                self.line, self.offset, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed AIGER design: the netlist plus its safety properties.
#[derive(Clone, Debug)]
pub struct AigerDesign {
    /// The and-inverter netlist.
    pub netlist: Netlist,
    /// Safety properties: AIGER 1.9 bad-state literals, or (for pre-1.9
    /// files without a `B` header field) the outputs.
    pub properties: Vec<Property>,
    /// Whether the input was the binary (`aig`) format.
    pub binary: bool,
}

/// Latch reset value as written in the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LatchInit {
    Zero,
    One,
    /// Reset to the latch's own literal: unconstrained.
    Unknown,
}

struct Latch {
    lit: u64,
    next: u64,
    init: LatchInit,
}

/// Intermediate representation of a fully scanned AIGER file.
#[derive(Default)]
struct AigerFile {
    max_var: u64,
    inputs: Vec<u64>,
    latches: Vec<Latch>,
    outputs: Vec<u64>,
    bads: Vec<u64>,
    /// Whether the header carried a `B` field (even if zero): controls the
    /// outputs-as-bad fallback.
    has_bad_section: bool,
    ands: Vec<(u64, u64, u64)>,
    input_names: HashMap<usize, String>,
    latch_names: HashMap<usize, String>,
    output_names: HashMap<usize, String>,
    bad_names: HashMap<usize, String>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor {
            bytes,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Consumes one space character.
    fn expect_space(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(b' ') => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err("expected a space")),
        }
    }

    /// Consumes a newline (LF or CRLF).
    fn expect_newline(&mut self) -> Result<(), ParseError> {
        if self.peek() == Some(b'\r') {
            self.bump();
        }
        match self.peek() {
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            None => Err(self.err("unexpected end of file, expected a newline")),
            Some(_) => Err(self.err("expected end of line")),
        }
    }

    /// Reads an unsigned decimal integer.
    fn read_uint(&mut self) -> Result<u64, ParseError> {
        let mut value: u64 = 0;
        let mut any = false;
        while let Some(b) = self.peek() {
            if !b.is_ascii_digit() {
                break;
            }
            self.bump();
            any = true;
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| self.err("number too large"))?;
        }
        if !any {
            return Err(self.err("expected an unsigned integer"));
        }
        Ok(value)
    }

    /// Reads the rest of the current line (without the newline) as UTF-8,
    /// consuming the newline if present.
    fn read_rest_of_line(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let mut end = self.pos;
        if end > start && self.bytes[end - 1] == b'\r' {
            end -= 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("symbol name is not valid UTF-8"))?
            .to_owned();
        if self.peek() == Some(b'\n') {
            self.bump();
        }
        Ok(text)
    }

    /// Reads one byte of the binary delta encoding.
    fn read_varint(&mut self) -> Result<u64, ParseError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unexpected end of file in binary and-gate section"))?;
            if shift >= 63 && b & !1 != 0 {
                return Err(self.err("binary delta encoding overflows 64 bits"));
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Variable definition site, used to reject duplicates and dangling
/// references.
#[derive(Clone, Copy, PartialEq, Eq)]
enum VarDef {
    Undefined,
    Input(usize),
    Latch(usize),
    And(usize),
}

/// Parses an AIGER file (ascii `aag` or binary `aig` format, auto-detected
/// from the header) into a netlist plus safety properties.
///
/// `name` becomes the netlist's design name.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the line and byte offset of the first
/// malformed construct. Files using AIGER 1.9 invariant-constraint, justice
/// or fairness sections are rejected as unsupported.
pub fn parse_aiger(bytes: &[u8], name: &str) -> Result<AigerDesign, ParseError> {
    let mut cur = Cursor::new(bytes);
    // Header: `aag M I L O A [B [C [J [F]]]]` (ascii) or `aig …` (binary).
    let magic = [cur.bump(), cur.bump(), cur.bump()];
    let binary = match magic {
        [Some(b'a'), Some(b'a'), Some(b'g')] => false,
        [Some(b'a'), Some(b'i'), Some(b'g')] => true,
        _ => {
            return Err(ParseError::new(
                1,
                0,
                "not an AIGER file: header must start with `aag` or `aig`",
            ))
        }
    };
    let mut header = Vec::new();
    while cur.peek() == Some(b' ') {
        cur.expect_space()?;
        header.push(cur.read_uint()?);
    }
    if header.len() < 5 || header.len() > 9 {
        return Err(cur.err(format!(
            "AIGER header needs 5 to 9 fields (M I L O A [B C J F]), got {}",
            header.len()
        )));
    }
    let (m, i, l, o, a) = (header[0], header[1], header[2], header[3], header[4]);
    let b = header.get(5).copied().unwrap_or(0);
    let c = header.get(6).copied().unwrap_or(0);
    let j = header.get(7).copied().unwrap_or(0);
    let f_cnt = header.get(8).copied().unwrap_or(0);
    if c > 0 {
        return Err(cur.err("AIGER invariant constraints (C section) are not supported"));
    }
    if j > 0 || f_cnt > 0 {
        return Err(cur.err("AIGER justice/fairness sections (J/F) are not supported"));
    }
    if m < i + l + a {
        return Err(cur.err(format!(
            "inconsistent header: M = {m} is less than I + L + A = {}",
            i + l + a
        )));
    }
    if binary && m != i + l + a {
        return Err(cur.err(format!(
            "binary AIGER requires M = I + L + A, got M = {m}, I + L + A = {}",
            i + l + a
        )));
    }
    if m > u64::from(u32::MAX / 2) {
        return Err(cur.err(format!("design too large: {m} variables")));
    }
    cur.expect_newline()?;

    let mut file = AigerFile {
        max_var: m,
        has_bad_section: header.len() >= 6,
        ..AigerFile::default()
    };
    let mut defs = vec![VarDef::Undefined; (m + 1) as usize];
    let mut define = |cur: &Cursor<'_>, lit: u64, def: VarDef| -> Result<(), ParseError> {
        if lit & 1 != 0 {
            return Err(cur.err(format!("literal {lit} must not be complemented here")));
        }
        if lit == 0 || lit > 2 * m {
            return Err(cur.err(format!("literal {lit} out of range for M = {m}")));
        }
        let slot = &mut defs[(lit >> 1) as usize];
        if *slot != VarDef::Undefined {
            return Err(cur.err(format!("variable {} defined twice", lit >> 1)));
        }
        *slot = def;
        Ok(())
    };
    let check_lit = |cur: &Cursor<'_>, lit: u64| -> Result<u64, ParseError> {
        if lit > 2 * m + 1 {
            return Err(cur.err(format!("literal {lit} out of range for M = {m}")));
        }
        Ok(lit)
    };

    // Inputs.
    for k in 0..i {
        let lit = if binary {
            2 * (k + 1)
        } else {
            let lit = cur.read_uint()?;
            cur.expect_newline()?;
            lit
        };
        define(&cur, lit, VarDef::Input(k as usize))?;
        file.inputs.push(lit);
    }
    // Latches: `lhs next [init]` (ascii) or `next [init]` (binary).
    for k in 0..l {
        let lit = if binary {
            2 * (i + k + 1)
        } else {
            let lit = cur.read_uint()?;
            cur.expect_space()?;
            lit
        };
        define(&cur, lit, VarDef::Latch(k as usize))?;
        let next = cur.read_uint()?;
        let next = check_lit(&cur, next)?;
        let init = if cur.peek() == Some(b' ') {
            cur.expect_space()?;
            let r = cur.read_uint()?;
            match r {
                0 => LatchInit::Zero,
                1 => LatchInit::One,
                r if r == lit => LatchInit::Unknown,
                _ => {
                    return Err(cur.err(format!(
                        "latch reset must be 0, 1 or the latch literal {lit}, got {r}"
                    )))
                }
            }
        } else {
            LatchInit::Zero
        };
        cur.expect_newline()?;
        file.latches.push(Latch { lit, next, init });
    }
    // Outputs and bad-state literals.
    for _ in 0..o {
        let lit = cur.read_uint()?;
        let lit = check_lit(&cur, lit)?;
        cur.expect_newline()?;
        file.outputs.push(lit);
    }
    for _ in 0..b {
        let lit = cur.read_uint()?;
        let lit = check_lit(&cur, lit)?;
        cur.expect_newline()?;
        file.bads.push(lit);
    }
    // And gates.
    if binary {
        for k in 0..a {
            let lhs = 2 * (i + l + k + 1);
            defs[(lhs >> 1) as usize] = VarDef::And(k as usize);
            let delta0 = cur.read_varint()?;
            if delta0 == 0 || delta0 > lhs {
                return Err(cur.err(format!(
                    "invalid binary delta {delta0} for and-gate literal {lhs}"
                )));
            }
            let rhs0 = lhs - delta0;
            let delta1 = cur.read_varint()?;
            if delta1 > rhs0 {
                return Err(cur.err(format!(
                    "invalid binary delta {delta1} for and-gate literal {lhs}"
                )));
            }
            let rhs1 = rhs0 - delta1;
            file.ands.push((lhs, rhs0, rhs1));
        }
    } else {
        for k in 0..a {
            let lhs = cur.read_uint()?;
            define(&cur, lhs, VarDef::And(k as usize))?;
            cur.expect_space()?;
            let rhs0 = cur.read_uint()?;
            let rhs0 = check_lit(&cur, rhs0)?;
            cur.expect_space()?;
            let rhs1 = cur.read_uint()?;
            let rhs1 = check_lit(&cur, rhs1)?;
            cur.expect_newline()?;
            file.ands.push((lhs, rhs0, rhs1));
        }
    }
    // Symbol table and comment section.
    loop {
        match cur.peek() {
            None => break,
            Some(b'c') => {
                // Comment section: `c` on its own line, rest of file ignored.
                cur.bump();
                match cur.peek() {
                    None | Some(b'\n') | Some(b'\r') => break,
                    Some(_) => return Err(cur.err("invalid symbol table entry")),
                }
            }
            Some(kind @ (b'i' | b'l' | b'o' | b'b')) => {
                cur.bump();
                let pos = cur.read_uint()? as usize;
                cur.expect_space()?;
                let name = cur.read_rest_of_line()?;
                let (table, count, what) = match kind {
                    b'i' => (&mut file.input_names, i as usize, "input"),
                    b'l' => (&mut file.latch_names, l as usize, "latch"),
                    b'o' => (&mut file.output_names, o as usize, "output"),
                    _ => (&mut file.bad_names, b as usize, "bad literal"),
                };
                if pos >= count {
                    return Err(cur.err(format!(
                        "symbol for {what} {pos} out of range ({count} declared)"
                    )));
                }
                table.insert(pos, name);
            }
            Some(_) => return Err(cur.err("invalid symbol table entry")),
        }
    }

    build_netlist(file, defs, name, binary)
}

/// Second pass: materialize the scanned file as a `Netlist` + properties.
fn build_netlist(
    file: AigerFile,
    defs: Vec<VarDef>,
    name: &str,
    binary: bool,
) -> Result<AigerDesign, ParseError> {
    let dangling = |lit: u64| {
        ParseError::new(
            0,
            0,
            format!("literal {lit} references undefined variable {}", lit >> 1),
        )
    };
    let mut n = Netlist::new(name);
    let mut var_sig: Vec<Option<SignalId>> = vec![None; (file.max_var + 1) as usize];
    // Definition order: inputs, latches, then and placeholders, so every
    // variable exists before literals are resolved (AIGER allows forward
    // references in the ascii format).
    for (k, &lit) in file.inputs.iter().enumerate() {
        let nm = file.input_names.get(&k).cloned().unwrap_or_default();
        var_sig[(lit >> 1) as usize] = Some(n.add_input(&nm));
    }
    for (k, latch) in file.latches.iter().enumerate() {
        let nm = file.latch_names.get(&k).cloned().unwrap_or_default();
        let init = match latch.init {
            LatchInit::Zero => Some(false),
            LatchInit::One => Some(true),
            LatchInit::Unknown => None,
        };
        var_sig[(latch.lit >> 1) as usize] = Some(n.add_register(&nm, init));
    }
    for &(lhs, _, _) in &file.ands {
        var_sig[(lhs >> 1) as usize] = Some(n.add_gate("", GateOp::And, &[]));
    }

    // Literal resolution: constants and complement edges are materialized
    // lazily and shared.
    let mut const_sig: [Option<SignalId>; 2] = [None, None];
    let mut not_cache: HashMap<SignalId, SignalId> = HashMap::new();
    let mut lit_sig = |n: &mut Netlist, lit: u64| -> Result<SignalId, ParseError> {
        let var = (lit >> 1) as usize;
        if var == 0 {
            let v = (lit & 1) == 1;
            return Ok(*const_sig[v as usize].get_or_insert_with(|| n.add_const("", v)));
        }
        if defs[var] == VarDef::Undefined {
            return Err(dangling(lit));
        }
        let base = var_sig[var].expect("defined variables were materialized");
        if lit & 1 == 0 {
            Ok(base)
        } else {
            Ok(*not_cache
                .entry(base)
                .or_insert_with(|| n.add_gate("", GateOp::Not, &[base])))
        }
    };

    for &(lhs, rhs0, rhs1) in &file.ands {
        let fanins = vec![lit_sig(&mut n, rhs0)?, lit_sig(&mut n, rhs1)?];
        let sig = var_sig[(lhs >> 1) as usize].expect("and gates were materialized");
        n.replace_gate_fanins(sig, GateOp::And, fanins);
    }
    for latch in &file.latches {
        let next = lit_sig(&mut n, latch.next)?;
        let reg = var_sig[(latch.lit >> 1) as usize].expect("latches were materialized");
        n.set_register_next(reg, next)
            .map_err(|e| ParseError::new(0, 0, format!("invalid AIGER netlist: {e}")))?;
    }
    let mut output_sigs = Vec::new();
    for (k, &lit) in file.outputs.iter().enumerate() {
        let sig = lit_sig(&mut n, lit)?;
        let nm = file
            .output_names
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("o{k}"));
        n.add_output(nm.clone(), sig);
        output_sigs.push((nm, sig));
    }
    let mut properties = Vec::new();
    if file.has_bad_section {
        for (k, &lit) in file.bads.iter().enumerate() {
            let sig = lit_sig(&mut n, lit)?;
            let nm = file
                .bad_names
                .get(&k)
                .cloned()
                .unwrap_or_else(|| format!("b{k}"));
            properties.push(Property::never_value(nm, sig, true));
        }
    } else {
        // Pre-1.9 HWMCC convention: outputs are the bad-state properties.
        for (nm, sig) in output_sigs {
            properties.push(Property::never_value(nm, sig, true));
        }
    }
    n.validate()
        .map_err(|e| ParseError::new(0, 0, format!("invalid AIGER netlist: {e}")))?;
    Ok(AigerDesign {
        netlist: n,
        properties,
        binary,
    })
}

/// And-inverter lowering state for the writer: assigns AIGER variables to
/// netlist signals with structural hashing and constant folding.
struct AigBuilder {
    /// Positive literal of each lowered netlist signal, by signal index.
    lit: Vec<u64>,
    /// `(rhs0, rhs1)` per and gate, `rhs0 >= rhs1`; the k-th entry defines
    /// variable `base + k + 1`.
    ands: Vec<(u64, u64)>,
    strash: HashMap<(u64, u64), u64>,
    /// Number of input + latch variables: and variables start above this.
    base: u64,
}

impl AigBuilder {
    fn and2(&mut self, x: u64, y: u64) -> u64 {
        let (a, b) = (x.max(y), x.min(y));
        if b == 0 || a == b ^ 1 {
            return 0;
        }
        if b == 1 || a == b {
            return a;
        }
        if let Some(&lit) = self.strash.get(&(a, b)) {
            return lit;
        }
        self.ands.push((a, b));
        let lit = 2 * (self.base + self.ands.len() as u64);
        self.strash.insert((a, b), lit);
        lit
    }

    fn and_fold(&mut self, lits: &[u64]) -> u64 {
        lits.iter().copied().fold(1, |acc, l| self.and2(acc, l))
    }

    fn or_fold(&mut self, lits: &[u64]) -> u64 {
        let neg: Vec<u64> = lits.iter().map(|l| l ^ 1).collect();
        self.and_fold(&neg) ^ 1
    }

    fn xor2(&mut self, a: u64, b: u64) -> u64 {
        let p = self.and2(a, b ^ 1);
        let q = self.and2(a ^ 1, b);
        self.and2(p ^ 1, q ^ 1) ^ 1
    }

    fn lower(&mut self, op: GateOp, lits: &[u64]) -> u64 {
        match op {
            GateOp::Buf => lits[0],
            GateOp::Not => lits[0] ^ 1,
            GateOp::And => self.and_fold(lits),
            GateOp::Nand => self.and_fold(lits) ^ 1,
            GateOp::Or => self.or_fold(lits),
            GateOp::Nor => self.or_fold(lits) ^ 1,
            GateOp::Xor => lits[1..].iter().fold(lits[0], |acc, &l| self.xor2(acc, l)),
            GateOp::Xnor => lits[1..].iter().fold(lits[0], |acc, &l| self.xor2(acc, l)) ^ 1,
            // Mux fanins are [sel, d0, d1]: sel ? d1 : d0.
            GateOp::Mux => {
                let (s, d0, d1) = (lits[0], lits[1], lits[2]);
                let t = self.and2(s, d1);
                let e = self.and2(s ^ 1, d0);
                self.and2(t ^ 1, e ^ 1) ^ 1
            }
        }
    }
}

/// Writes the netlist and its properties in the ascii AIGER (`aag`) format.
///
/// Properties become AIGER 1.9 bad-state literals (`B` section); netlist
/// outputs are written as outputs. See [`write_aiger`].
///
/// # Errors
///
/// Fails if the netlist does not [`Netlist::validate`] or a property watches
/// a signal outside the netlist.
pub fn write_aiger_ascii(
    netlist: &Netlist,
    properties: &[Property],
) -> Result<Vec<u8>, NetlistError> {
    write_aiger(netlist, properties, false)
}

/// Writes the netlist and its properties in the binary AIGER (`aig`) format.
///
/// See [`write_aiger_ascii`]; the lowered and-inverter graph is identical,
/// only the serialization differs.
///
/// # Errors
///
/// Fails if the netlist does not [`Netlist::validate`] or a property watches
/// a signal outside the netlist.
pub fn write_aiger_binary(
    netlist: &Netlist,
    properties: &[Property],
) -> Result<Vec<u8>, NetlistError> {
    write_aiger(netlist, properties, true)
}

/// Writes the netlist in ascii (`binary = false`) or binary AIGER format.
///
/// All [`GateOp`]s are lowered on the fly to two-input and gates with
/// complement edges, structural hashing and constant folding. Input, latch,
/// output and property names are emitted as symbol-table entries.
pub fn write_aiger(
    netlist: &Netlist,
    properties: &[Property],
    binary: bool,
) -> Result<Vec<u8>, NetlistError> {
    netlist.validate()?;
    let num_signals = netlist.num_signals();
    for p in properties {
        if p.signal.index() >= num_signals {
            return Err(NetlistError::UnknownSignal(p.signal));
        }
    }
    let ni = netlist.inputs().len() as u64;
    let nl = netlist.registers().len() as u64;
    let mut b = AigBuilder {
        lit: vec![u64::MAX; num_signals],
        ands: Vec::new(),
        strash: HashMap::new(),
        base: ni + nl,
    };
    for (k, &s) in netlist.inputs().iter().enumerate() {
        b.lit[s.index()] = 2 * (k as u64 + 1);
    }
    for (k, &s) in netlist.registers().iter().enumerate() {
        b.lit[s.index()] = 2 * (ni + k as u64 + 1);
    }
    for s in netlist.signals() {
        if let NetKind::Const(v) = netlist.kind(s) {
            b.lit[s.index()] = u64::from(*v);
        }
    }
    // topo_order yields gates only; inputs, registers and constants were
    // assigned above.
    for s in netlist.topo_order()? {
        if let NetKind::Gate { op, fanins } = netlist.kind(s) {
            let lits: Vec<u64> = fanins.iter().map(|f| b.lit[f.index()]).collect();
            let lit = b.lower(*op, &lits);
            b.lit[s.index()] = lit;
        }
    }
    let latch_lines: Vec<(u64, u64, Option<bool>)> = netlist
        .registers()
        .iter()
        .map(|&r| {
            (
                b.lit[r.index()],
                b.lit[netlist.register_next(r).index()],
                netlist.register_init(r),
            )
        })
        .collect();
    let out_lits: Vec<u64> = netlist
        .outputs()
        .iter()
        .map(|(_, s)| b.lit[s.index()])
        .collect();
    let bad_lits: Vec<u64> = properties
        .iter()
        .map(|p| b.lit[p.signal.index()] ^ u64::from(!p.value))
        .collect();

    let m = ni + nl + b.ands.len() as u64;
    let mut out = Vec::new();
    let magic = if binary { "aig" } else { "aag" };
    let mut header = format!("{magic} {m} {ni} {nl} {} {}", out_lits.len(), b.ands.len());
    if !bad_lits.is_empty() {
        header.push_str(&format!(" {}", bad_lits.len()));
    }
    header.push('\n');
    out.extend_from_slice(header.as_bytes());
    if !binary {
        for k in 0..ni {
            out.extend_from_slice(format!("{}\n", 2 * (k + 1)).as_bytes());
        }
    }
    for (lhs, next, init) in &latch_lines {
        let mut line = String::new();
        if !binary {
            line.push_str(&format!("{lhs} "));
        }
        line.push_str(&format!("{next}"));
        match init {
            Some(false) => {}
            Some(true) => line.push_str(" 1"),
            None => line.push_str(&format!(" {lhs}")),
        }
        line.push('\n');
        out.extend_from_slice(line.as_bytes());
    }
    for lit in &out_lits {
        out.extend_from_slice(format!("{lit}\n").as_bytes());
    }
    for lit in &bad_lits {
        out.extend_from_slice(format!("{lit}\n").as_bytes());
    }
    for (k, (rhs0, rhs1)) in b.ands.iter().enumerate() {
        let lhs = 2 * (ni + nl + k as u64 + 1);
        if binary {
            push_varint(&mut out, lhs - rhs0);
            push_varint(&mut out, rhs0 - rhs1);
        } else {
            out.extend_from_slice(format!("{lhs} {rhs0} {rhs1}\n").as_bytes());
        }
    }
    // Symbol table: named inputs/latches/outputs, and every property.
    for (k, &s) in netlist.inputs().iter().enumerate() {
        let nm = netlist.signal_name(s);
        if !nm.is_empty() {
            out.extend_from_slice(format!("i{k} {nm}\n").as_bytes());
        }
    }
    for (k, &s) in netlist.registers().iter().enumerate() {
        let nm = netlist.signal_name(s);
        if !nm.is_empty() {
            out.extend_from_slice(format!("l{k} {nm}\n").as_bytes());
        }
    }
    for (k, (nm, _)) in netlist.outputs().iter().enumerate() {
        if !nm.is_empty() {
            out.extend_from_slice(format!("o{k} {nm}\n").as_bytes());
        }
    }
    for (k, p) in properties.iter().enumerate() {
        if !p.name.is_empty() {
            out.extend_from_slice(format!("b{k} {}\n", p.name).as_bytes());
        }
    }
    Ok(out)
}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    while x & !0x7f != 0 {
        out.push((x & 0x7f) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_aag() -> &'static str {
        // One latch toggling forever, bad when high: falsified at depth 1.
        "aag 1 0 1 0 0 1\n2 3\n2\nl0 t\nb0 high\n"
    }

    #[test]
    fn parses_ascii_toggle() {
        let d = parse_aiger(toggle_aag().as_bytes(), "toggle").unwrap();
        assert_eq!(d.netlist.registers().len(), 1);
        assert_eq!(d.properties.len(), 1);
        assert_eq!(d.properties[0].name, "high");
        assert!(!d.binary);
        let r = d.netlist.registers()[0];
        assert_eq!(d.netlist.signal_name(r), "t");
        assert_eq!(d.netlist.register_init(r), Some(false));
    }

    #[test]
    fn outputs_become_properties_without_bad_section() {
        let src = "aag 1 0 1 1 0\n2 3\n2\no0 stuck\n";
        let d = parse_aiger(src.as_bytes(), "t").unwrap();
        assert_eq!(d.properties.len(), 1);
        assert_eq!(d.properties[0].name, "stuck");
        assert_eq!(d.netlist.outputs().len(), 1);
    }

    #[test]
    fn explicit_empty_bad_section_keeps_outputs_plain() {
        let src = "aag 1 0 1 1 0 0\n2 3\n2\n";
        let d = parse_aiger(src.as_bytes(), "t").unwrap();
        assert!(d.properties.is_empty());
        assert_eq!(d.netlist.outputs().len(), 1);
    }

    #[test]
    fn latch_resets_map_to_init_values() {
        let src = "aag 3 0 3 0 0 1\n2 2 1\n4 4 4\n6 6\n2\n";
        let d = parse_aiger(src.as_bytes(), "t").unwrap();
        let regs = d.netlist.registers();
        assert_eq!(d.netlist.register_init(regs[0]), Some(true));
        assert_eq!(d.netlist.register_init(regs[1]), None);
        assert_eq!(d.netlist.register_init(regs[2]), Some(false));
    }

    #[test]
    fn rejects_constraints_and_justice() {
        let src = "aag 0 0 0 0 0 0 1\n";
        let e = parse_aiger(src.as_bytes(), "t").unwrap_err();
        assert!(e.message.contains("not supported"), "{e}");
        let src = "aag 0 0 0 0 0 0 0 1\n";
        assert!(parse_aiger(src.as_bytes(), "t").is_err());
    }

    #[test]
    fn reports_line_and_offset() {
        let src = "aag 1 1 0 0 0\nxyz\n";
        let e = parse_aiger(src.as_bytes(), "t").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.offset, 14);
    }

    #[test]
    fn rejects_duplicate_definition() {
        let src = "aag 2 2 0 0 0\n2\n2\n";
        let e = parse_aiger(src.as_bytes(), "t").unwrap_err();
        assert!(e.message.contains("defined twice"), "{e}");
    }

    #[test]
    fn rejects_dangling_reference() {
        let src = "aag 2 1 0 1 0\n2\n4\n";
        let e = parse_aiger(src.as_bytes(), "t").unwrap_err();
        assert!(e.message.contains("undefined variable"), "{e}");
    }

    #[test]
    fn ascii_roundtrip_is_stable() {
        let d = parse_aiger(toggle_aag().as_bytes(), "toggle").unwrap();
        let once = write_aiger_ascii(&d.netlist, &d.properties).unwrap();
        let d2 = parse_aiger(&once, "toggle").unwrap();
        let twice = write_aiger_ascii(&d2.netlist, &d2.properties).unwrap();
        assert_eq!(once, twice);
        assert_eq!(
            d.netlist.structural_hash(),
            d2.netlist.structural_hash(),
            "toggle AIG is already in and-inverter form, so parse∘write is identity"
        );
    }

    #[test]
    fn binary_and_ascii_agree() {
        let d = parse_aiger(toggle_aag().as_bytes(), "toggle").unwrap();
        let asc = write_aiger_ascii(&d.netlist, &d.properties).unwrap();
        let bin = write_aiger_binary(&d.netlist, &d.properties).unwrap();
        let da = parse_aiger(&asc, "toggle").unwrap();
        let db = parse_aiger(&bin, "toggle").unwrap();
        assert!(db.binary);
        assert_eq!(da.netlist.structural_hash(), db.netlist.structural_hash());
    }

    #[test]
    fn writer_lowers_rich_gates() {
        let mut n = Netlist::new("rich");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let x = n.add_gate("x", GateOp::Xor, &[a, b]);
        let mx = n.add_gate("mx", GateOp::Mux, &[s, a, x]);
        let no = n.add_gate("no", GateOp::Nor, &[mx, b]);
        n.add_output("no", no);
        n.validate().unwrap();
        let bytes = write_aiger_ascii(&n, &[]).unwrap();
        let d = parse_aiger(&bytes, "rich").unwrap();
        assert_eq!(d.netlist.inputs().len(), 3);
        assert_eq!(d.netlist.outputs().len(), 1);
        // Exhaustive equivalence over the 8 input assignments.
        for bits in 0..8u32 {
            let (va, vb, vs) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let expect = !((if vs { va ^ vb } else { va }) | vb);
            let got = eval_output(&d.netlist, &[va, vb, vs]);
            assert_eq!(got, expect, "inputs {va} {vb} {vs}");
        }
    }

    /// Evaluates the sole output of a combinational netlist.
    fn eval_output(n: &Netlist, inputs: &[bool]) -> bool {
        let mut vals = vec![false; n.num_signals()];
        for (k, &s) in n.inputs().iter().enumerate() {
            vals[s.index()] = inputs[k];
        }
        for s in n.signals() {
            if let NetKind::Const(v) = n.kind(s) {
                vals[s.index()] = *v;
            }
        }
        for s in n.topo_order().unwrap() {
            if let NetKind::Gate { op, fanins } = n.kind(s) {
                let f: Vec<bool> = fanins.iter().map(|x| vals[x.index()]).collect();
                vals[s.index()] = op.eval(&f);
            }
        }
        vals[n.outputs()[0].1.index()]
    }
}
