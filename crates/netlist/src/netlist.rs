//! The gate-level netlist IR.

use std::collections::HashMap;
use std::fmt;

use crate::{GateOp, NetlistError, SignalId};

/// What a net computes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// A primary input of the design.
    Input,
    /// A constant driver.
    Const(bool),
    /// A combinational gate over the given fanins.
    Gate {
        /// The boolean operator.
        op: GateOp,
        /// Fanin signals, in operator order.
        fanins: Vec<SignalId>,
    },
    /// A register (sequential cell). Its signal is the register *output*.
    Register {
        /// Reset value; `None` means the initial value is unknown (free).
        init: Option<bool>,
        /// Next-state (data) input; `None` until connected.
        next: Option<SignalId>,
    },
}

/// A single net: its kind plus an optional name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    pub(crate) kind: NetKind,
    pub(crate) name: String,
}

impl Net {
    /// The net's kind.
    pub fn kind(&self) -> &NetKind {
        &self.kind
    }

    /// The net's name; empty for anonymous nets.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A gate-level design `M = (G, L)`: gates `G` plus registers `L`.
///
/// Nets are created through the `add_*` methods, which hand back [`SignalId`]s
/// referring to the net's output signal. Registers are created in two phases
/// so that sequential feedback loops can be expressed: [`Netlist::add_register`]
/// first, [`Netlist::set_register_next`] once the data logic exists.
///
/// Call [`Netlist::validate`] after construction; engines in the other crates
/// assume a validated netlist (all registers connected, no combinational
/// cycles, arities respected).
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("toggler");
/// let en = n.add_input("en");
/// let q = n.add_register("q", Some(false));
/// let nq = n.add_gate("nq", GateOp::Xor, &[q, en]);
/// n.set_register_next(q, nq)?;
/// n.add_output("q", q);
/// n.validate()?;
/// assert_eq!(n.num_registers(), 1);
/// assert_eq!(n.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    names: HashMap<String, SignalId>,
    inputs: Vec<SignalId>,
    registers: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets (inputs + constants + gates + registers).
    pub fn num_signals(&self) -> usize {
        self.nets.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.nets
            .iter()
            .filter(|n| matches!(n.kind, NetKind::Gate { .. }))
            .count()
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Primary inputs, in creation order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Register output signals, in creation order.
    pub fn registers(&self) -> &[SignalId] {
        &self.registers
    }

    /// Named design outputs `(name, signal)`, in creation order.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// The net behind a signal.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range for this netlist.
    pub fn net(&self, s: SignalId) -> &Net {
        &self.nets[s.index()]
    }

    /// The kind of the net behind a signal.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range for this netlist.
    pub fn kind(&self, s: SignalId) -> &NetKind {
        &self.nets[s.index()].kind
    }

    /// Looks a signal up by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.names.get(name).copied()
    }

    /// The name of a signal (empty for anonymous nets).
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.nets[s.index()].name
    }

    /// A human-readable label: the signal's name if present, else `s<idx>`.
    pub fn label(&self, s: SignalId) -> String {
        let n = self.signal_name(s);
        if n.is_empty() {
            format!("{s}")
        } else {
            n.to_owned()
        }
    }

    /// Whether the signal is a register output.
    pub fn is_register(&self, s: SignalId) -> bool {
        matches!(self.kind(s), NetKind::Register { .. })
    }

    /// Whether the signal is a primary input.
    pub fn is_input(&self, s: SignalId) -> bool {
        matches!(self.kind(s), NetKind::Input)
    }

    /// Whether the signal is a gate output.
    pub fn is_gate(&self, s: SignalId) -> bool {
        matches!(self.kind(s), NetKind::Gate { .. })
    }

    /// The initial value of a register, or `None` if the register's reset
    /// value is unknown.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a register.
    pub fn register_init(&self, s: SignalId) -> Option<bool> {
        match self.kind(s) {
            NetKind::Register { init, .. } => *init,
            _ => panic!("{s} is not a register"),
        }
    }

    /// The next-state input of a register.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a register or its next input is unconnected
    /// (i.e. the netlist was not validated).
    pub fn register_next(&self, s: SignalId) -> SignalId {
        match self.kind(s) {
            NetKind::Register { next: Some(n), .. } => *n,
            NetKind::Register { next: None, .. } => panic!("register {s} unconnected"),
            _ => panic!("{s} is not a register"),
        }
    }

    /// Combinational fanins of a signal (empty for inputs, constants and
    /// registers — a register's *data* input is its [`Netlist::register_next`],
    /// which is sequential, not combinational, fanin).
    pub fn fanins(&self, s: SignalId) -> &[SignalId] {
        match self.kind(s) {
            NetKind::Gate { fanins, .. } => fanins,
            _ => &[],
        }
    }

    fn push(&mut self, kind: NetKind, name: &str) -> SignalId {
        let id = SignalId(self.nets.len() as u32);
        if !name.is_empty() {
            // Overwriting silently would corrupt lookups; detected in validate.
            self.names.entry(name.to_owned()).or_insert(id);
        }
        self.nets.push(Net {
            kind,
            name: name.to_owned(),
        });
        id
    }

    /// Adds a primary input. Pass an empty name for an anonymous input.
    pub fn add_input(&mut self, name: &str) -> SignalId {
        let id = self.push(NetKind::Input, name);
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, name: &str, value: bool) -> SignalId {
        self.push(NetKind::Const(value), name)
    }

    /// Adds a combinational gate. Pass an empty name for an anonymous gate.
    ///
    /// Arity violations are tolerated here and reported by
    /// [`Netlist::validate`] so that builders can stay infallible.
    pub fn add_gate(&mut self, name: &str, op: GateOp, fanins: &[SignalId]) -> SignalId {
        self.push(
            NetKind::Gate {
                op,
                fanins: fanins.to_vec(),
            },
            name,
        )
    }

    /// Adds a register with the given reset value (`None` = unknown reset).
    ///
    /// The register's next-state input must be connected later with
    /// [`Netlist::set_register_next`].
    pub fn add_register(&mut self, name: &str, init: Option<bool>) -> SignalId {
        let id = self.push(NetKind::Register { init, next: None }, name);
        self.registers.push(id);
        id
    }

    /// Connects the next-state input of register `reg` to `next`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotARegister`] if `reg` is not a register,
    /// [`NetlistError::UnknownSignal`] if either signal is out of range, and
    /// [`NetlistError::NextAlreadySet`] if the register was already connected.
    pub fn set_register_next(&mut self, reg: SignalId, next: SignalId) -> Result<(), NetlistError> {
        if next.index() >= self.nets.len() {
            return Err(NetlistError::UnknownSignal(next));
        }
        let Some(net) = self.nets.get_mut(reg.index()) else {
            return Err(NetlistError::UnknownSignal(reg));
        };
        match &mut net.kind {
            NetKind::Register { next: slot, .. } => {
                if slot.is_some() {
                    return Err(NetlistError::NextAlreadySet(reg));
                }
                *slot = Some(next);
                Ok(())
            }
            _ => Err(NetlistError::NotARegister(reg)),
        }
    }

    /// Declares a named design output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: SignalId) {
        self.outputs.push((name.into(), signal));
    }

    /// Checks the structural invariants every engine relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violation found among: duplicate names, unconnected
    /// registers, out-of-range fanins, arity violations and combinational
    /// cycles.
    pub fn validate(&self) -> Result<(), NetlistError> {
        // Duplicate names: the name map keeps the first definition, so a
        // duplicate shows up as a later net whose name maps elsewhere.
        for (idx, net) in self.nets.iter().enumerate() {
            if !net.name.is_empty() {
                let mapped = self.names[&net.name];
                if mapped.index() != idx {
                    return Err(NetlistError::DuplicateName(net.name.clone()));
                }
            }
        }
        for (idx, net) in self.nets.iter().enumerate() {
            let s = SignalId(idx as u32);
            match &net.kind {
                NetKind::Register { next, .. } => match next {
                    None => return Err(NetlistError::UnconnectedRegister(s)),
                    Some(n) if n.index() >= self.nets.len() => {
                        return Err(NetlistError::UnknownSignal(*n))
                    }
                    Some(_) => {}
                },
                NetKind::Gate { op, fanins } => {
                    let (lo, hi) = op.arity();
                    if fanins.len() < lo || fanins.len() > hi {
                        return Err(NetlistError::BadArity {
                            signal: s,
                            got: fanins.len(),
                        });
                    }
                    for f in fanins {
                        if f.index() >= self.nets.len() {
                            return Err(NetlistError::UnknownSignal(*f));
                        }
                    }
                }
                NetKind::Input | NetKind::Const(_) => {}
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Computes a topological order of all *gate* signals (fanins before
    /// fanouts). Inputs, constants and registers are sources and are not
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational logic
    /// is cyclic.
    pub fn topo_order(&self) -> Result<Vec<SignalId>, NetlistError> {
        // Iterative DFS with tri-state marks (0 = unseen, 1 = open, 2 = done).
        let mut mark = vec![0u8; self.nets.len()];
        let mut order = Vec::new();
        let mut stack: Vec<(SignalId, usize)> = Vec::new();
        for idx in 0..self.nets.len() {
            let root = SignalId(idx as u32);
            if !self.is_gate(root) || mark[idx] != 0 {
                continue;
            }
            stack.push((root, 0));
            mark[idx] = 1;
            while let Some(&mut (s, ref mut fi)) = stack.last_mut() {
                let fanins = self.fanins(s);
                if *fi < fanins.len() {
                    let f = fanins[*fi];
                    *fi += 1;
                    if self.is_gate(f) {
                        match mark[f.index()] {
                            0 => {
                                mark[f.index()] = 1;
                                stack.push((f, 0));
                            }
                            1 => return Err(NetlistError::CombinationalCycle(f)),
                            _ => {}
                        }
                    }
                } else {
                    mark[s.index()] = 2;
                    order.push(s);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Iterates over every signal id in the netlist.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.nets.len() as u32).map(SignalId)
    }

    /// A stable structural fingerprint of the design: FNV-1a over the
    /// design name and every net's kind, name and connectivity, in signal
    /// order. Two structurally identical netlists hash equal across
    /// processes and builds (no pointer or `HashMap`-iteration input), so
    /// the hash can key persistent caches — the order/BDD warm-start
    /// store uses it to reject stale entries after a design edit.
    pub fn structural_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h ^= 0xff; // field separator, so "ab","c" != "a","bc"
            h = h.wrapping_mul(FNV_PRIME);
        };
        eat(self.name.as_bytes());
        for net in &self.nets {
            eat(net.name.as_bytes());
            match &net.kind {
                NetKind::Input => eat(b"i"),
                NetKind::Const(v) => eat(if *v { b"c1" } else { b"c0" }),
                NetKind::Gate { op, fanins } => {
                    eat(op.mnemonic().as_bytes());
                    for f in fanins {
                        eat(&f.index().to_le_bytes());
                    }
                }
                NetKind::Register { init, next } => {
                    eat(match init {
                        None => b"rx",
                        Some(false) => b"r0",
                        Some(true) => b"r1",
                    });
                    if let Some(n) = next {
                        eat(&n.index().to_le_bytes());
                    }
                }
            }
        }
        for (name, s) in &self.outputs {
            eat(name.as_bytes());
            eat(&s.index().to_le_bytes());
        }
        h
    }

    /// Replaces a gate's operator and fanins. Parser internal use only: the
    /// two-pass text parser creates gates with placeholder fanins first.
    pub(crate) fn replace_gate_fanins(
        &mut self,
        gate: SignalId,
        op: GateOp,
        fanins: Vec<SignalId>,
    ) {
        if let Some(net) = self.nets.get_mut(gate.index()) {
            if matches!(net.kind, NetKind::Gate { .. }) {
                net.kind = NetKind::Gate { op, fanins };
            }
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design `{}`: {} inputs, {} registers, {} gates",
            self.name,
            self.inputs.len(),
            self.registers.len(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> (Netlist, SignalId, SignalId) {
        let mut n = Netlist::new("c");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        (n, b0, b1)
    }

    #[test]
    fn build_and_validate_counter() {
        let (n, b0, _) = counter();
        n.validate().unwrap();
        assert_eq!(n.num_registers(), 2);
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.find("b0"), Some(b0));
        assert_eq!(n.register_init(b0), Some(false));
    }

    #[test]
    fn unconnected_register_is_rejected() {
        let mut n = Netlist::new("u");
        let r = n.add_register("r", Some(true));
        assert_eq!(n.validate(), Err(NetlistError::UnconnectedRegister(r)));
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let mut n = Netlist::new("d");
        n.add_input("x");
        n.add_input("x");
        assert_eq!(
            n.validate(),
            Err(NetlistError::DuplicateName("x".to_owned()))
        );
    }

    #[test]
    fn double_next_assignment_is_rejected() {
        let mut n = Netlist::new("d");
        let r = n.add_register("r", Some(false));
        let i = n.add_input("i");
        n.set_register_next(r, i).unwrap();
        assert_eq!(
            n.set_register_next(r, i),
            Err(NetlistError::NextAlreadySet(r))
        );
    }

    #[test]
    fn next_on_non_register_is_rejected() {
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let j = n.add_input("j");
        assert_eq!(
            n.set_register_next(i, j),
            Err(NetlistError::NotARegister(i))
        );
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("cyc");
        let a = n.add_gate("a", GateOp::Buf, &[SignalId(1)]);
        let b = n.add_gate("b", GateOp::Buf, &[a]);
        let _ = b;
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn sequential_loop_is_fine() {
        // register -> gate -> register is not a combinational cycle
        let (n, _, _) = counter();
        assert!(n.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_fanins() {
        let (n, _, _) = counter();
        let order = n.topo_order().unwrap();
        assert_eq!(order.len(), 2);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        for g in &order {
            for f in n.fanins(*g) {
                if n.is_gate(*f) {
                    assert!(pos[f] < pos[g]);
                }
            }
        }
    }

    #[test]
    fn bad_arity_detected() {
        let mut n = Netlist::new("a");
        let i = n.add_input("i");
        let g = n.add_gate("g", GateOp::Mux, &[i, i]);
        assert_eq!(
            n.validate(),
            Err(NetlistError::BadArity { signal: g, got: 2 })
        );
    }

    #[test]
    fn display_summarizes() {
        let (n, _, _) = counter();
        let s = format!("{n}");
        assert!(s.contains("2 registers"));
        assert!(s.contains("2 gates"));
    }
}
