//! COI bitsets and COI-overlap property grouping.
//!
//! Multi-property designs usually watch a handful of closely related cones:
//! table-1 style watchdogs over one pipeline share almost all of their
//! registers. Verifying each property in isolation rebuilds the same model,
//! variable order and reached set once per property. This module provides the
//! scheduling substrate for *group verification*: a dense register-bitset
//! form of [`Coi`] with cheap union/intersection/Jaccard operations, and a
//! deterministic greedy clustering of properties by COI overlap.

use crate::{Coi, Netlist, Property, SignalId};

/// Dense bitset over the signals of one [`Netlist`], used to represent the
/// register cone of influence of a property.
///
/// Bit `i` corresponds to `SignalId::from_index(i)`; the capacity is the
/// netlist's `num_signals()`, so sets from the same netlist can be combined
/// directly.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Coi};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let i = n.add_input("i");
/// let r = n.add_register("r", Some(false));
/// let g = n.add_gate("g", GateOp::And, &[i, r]);
/// n.set_register_next(r, g)?;
/// n.validate()?;
/// let set = Coi::of(&n, [g]).register_set(&n);
/// assert!(set.contains(r));
/// assert_eq!(set.count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoiSet {
    words: Vec<u64>,
    capacity: usize,
}

impl CoiSet {
    /// Creates an empty set with capacity for `num_signals` signals.
    pub fn empty(num_signals: usize) -> Self {
        CoiSet {
            words: vec![0; num_signals.div_ceil(64)],
            capacity: num_signals,
        }
    }

    /// Creates a set containing exactly the given signals.
    ///
    /// # Panics
    ///
    /// Panics if any signal index is `>= num_signals`.
    pub fn from_signals(num_signals: usize, signals: impl IntoIterator<Item = SignalId>) -> Self {
        let mut set = CoiSet::empty(num_signals);
        for s in signals {
            set.insert(s);
        }
        set
    }

    /// Number of signals the set can hold (the netlist's `num_signals()`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal index is out of capacity.
    pub fn insert(&mut self, signal: SignalId) {
        let i = signal.index();
        assert!(i < self.capacity, "signal {signal} out of CoiSet capacity");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests membership. Out-of-capacity signals are never members.
    pub fn contains(&self, signal: SignalId) -> bool {
        let i = signal.index();
        i < self.capacity && self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Number of signals in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set holds no signals.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union, as a new set.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different netlists).
    pub fn union(&self, other: &CoiSet) -> CoiSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Unions `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different netlists).
    pub fn union_with(&mut self, other: &CoiSet) {
        assert_eq!(self.capacity, other.capacity, "CoiSet capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Set intersection, as a new set.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different netlists).
    pub fn intersect(&self, other: &CoiSet) -> CoiSet {
        assert_eq!(self.capacity, other.capacity, "CoiSet capacity mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        CoiSet {
            words,
            capacity: self.capacity,
        }
    }

    /// Size of the intersection, without allocating.
    pub fn intersection_count(&self, other: &CoiSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "CoiSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Jaccard similarity `|a ∩ b| / |a ∪ b|` in `[0, 1]`.
    ///
    /// Two empty sets are defined as identical (similarity `1.0`), so
    /// register-free properties cluster together rather than each forming a
    /// degenerate group.
    pub fn jaccard(&self, other: &CoiSet) -> f64 {
        assert_eq!(self.capacity, other.capacity, "CoiSet capacity mismatch");
        let mut inter = 0usize;
        let mut union = 0usize;
        for (a, b) in self.words.iter().zip(&other.words) {
            inter += (a & b).count_ones() as usize;
            union += (a | b).count_ones() as usize;
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Iterates the member signals in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 != 0)
                .map(move |b| SignalId::from_index(wi * 64 + b))
        })
    }

    /// Collects the member signals into a sorted `Vec`.
    pub fn to_signals(&self) -> Vec<SignalId> {
        self.iter().collect()
    }
}

impl Coi {
    /// Returns the register COI as a dense bitset over the netlist's signals.
    ///
    /// Agrees exactly with [`Coi::registers`]; the bitset form supports the
    /// constant-time overlap tests used by [`PropertyGroups::cluster`].
    pub fn register_set(&self, netlist: &Netlist) -> CoiSet {
        CoiSet::from_signals(netlist.num_signals(), self.registers().iter().copied())
    }
}

/// One cluster of properties produced by [`PropertyGroups::cluster`].
#[derive(Clone, Debug)]
pub struct PropertyGroup {
    members: Vec<usize>,
    coi: CoiSet,
}

impl PropertyGroup {
    /// Indices into the clustered property slice, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Union register COI over all members.
    pub fn coi(&self) -> &CoiSet {
        &self.coi
    }

    /// True if the group holds a single property.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Deterministic key naming this group, suitable for warm-start store
    /// entries: member property names joined with `+`, truncated with a
    /// stable hash suffix when over-long so file names stay bounded.
    pub fn key(&self, properties: &[Property]) -> String {
        let joined = self
            .members
            .iter()
            .map(|&i| properties[i].name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        if joined.len() <= 64 {
            return joined;
        }
        // FNV-1a over the full joined key keeps the truncated form unique
        // enough for cache-entry naming while staying deterministic.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in joined.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let head: String = joined.chars().take(40).collect();
        format!("{head}+{}more-{h:016x}", self.members.len() - 1)
    }
}

/// A partition of a property list into COI-overlap clusters.
///
/// Produced by [`PropertyGroups::cluster`]; groups appear in the order their
/// leader property appears in the input, and each group's members are in
/// ascending input order, so the partition is deterministic for a given
/// netlist, property list and threshold.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Property, PropertyGroups};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let r = n.add_register("r", Some(false));
/// let g = n.add_gate("g", GateOp::Not, &[r]);
/// n.set_register_next(r, g)?;
/// n.validate()?;
/// let props = [Property::never(&n, "p", r), Property::never(&n, "q", g)];
/// let groups = PropertyGroups::cluster(&n, &props, 0.5);
/// assert_eq!(groups.len(), 1); // identical COIs cluster together
/// assert_eq!(groups.groups()[0].members(), &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PropertyGroups {
    groups: Vec<PropertyGroup>,
}

impl PropertyGroups {
    /// Buckets properties by register-COI overlap.
    ///
    /// Greedy leader-based clustering: properties are scanned in input
    /// order; each joins the existing group whose *leader* (first member) COI
    /// has the highest Jaccard similarity, provided that similarity is
    /// `>= threshold`; ties break to the lowest group index; otherwise the
    /// property starts a new group. Each group tracks the union COI of its
    /// members for model construction.
    pub fn cluster(netlist: &Netlist, properties: &[Property], threshold: f64) -> Self {
        let sets: Vec<CoiSet> = properties
            .iter()
            .map(|p| Coi::of(netlist, [p.signal]).register_set(netlist))
            .collect();
        let mut groups: Vec<PropertyGroup> = Vec::new();
        let mut leaders: Vec<usize> = Vec::new();
        for (i, set) in sets.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for (gi, &leader) in leaders.iter().enumerate() {
                let j = sets[leader].jaccard(set);
                if j >= threshold && best.is_none_or(|(_, bj)| j > bj) {
                    best = Some((gi, j));
                }
            }
            match best {
                Some((gi, _)) => {
                    groups[gi].members.push(i);
                    groups[gi].coi.union_with(set);
                }
                None => {
                    leaders.push(i);
                    groups.push(PropertyGroup {
                        members: vec![i],
                        coi: set.clone(),
                    });
                }
            }
        }
        PropertyGroups { groups }
    }

    /// The trivial partition: one singleton group per property, in order.
    ///
    /// Used when grouping is disabled (`--no-group`); group COIs are still
    /// computed so callers can treat both partitions uniformly.
    pub fn singletons(netlist: &Netlist, properties: &[Property]) -> Self {
        let groups = properties
            .iter()
            .enumerate()
            .map(|(i, p)| PropertyGroup {
                members: vec![i],
                coi: Coi::of(netlist, [p.signal]).register_set(netlist),
            })
            .collect();
        PropertyGroups { groups }
    }

    /// The groups, in leader order.
    pub fn groups(&self) -> &[PropertyGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if there are no groups (empty property list).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of groups holding more than one property.
    pub fn num_non_singleton(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_singleton()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateOp;

    /// Two independent 2-register chains plus one property bridging both.
    fn two_chains() -> (Netlist, Vec<Property>) {
        let mut n = Netlist::new("two_chains");
        let mut regs = Vec::new();
        for c in 0..2 {
            let r1 = n.add_register(&format!("c{c}_r1"), Some(false));
            let r2 = n.add_register(&format!("c{c}_r2"), Some(false));
            let g = n.add_gate(&format!("c{c}_g"), GateOp::Not, &[r1]);
            n.set_register_next(r1, r1).unwrap();
            n.set_register_next(r2, g).unwrap();
            regs.push((r1, r2));
        }
        let bridge = n.add_gate("bridge", GateOp::And, &[regs[0].1, regs[1].1]);
        n.validate().unwrap();
        let props = vec![
            Property::never(&n, "a1", regs[0].1),
            Property::never(&n, "a2", regs[0].0),
            Property::never(&n, "b1", regs[1].1),
            Property::never(&n, "bridge", bridge),
        ];
        (n, props)
    }

    #[test]
    fn bitset_agrees_with_traversal() {
        let (n, props) = two_chains();
        for p in &props {
            let coi = Coi::of(&n, [p.signal]);
            let set = coi.register_set(&n);
            assert_eq!(set.to_signals(), coi.registers());
            assert_eq!(set.count(), coi.num_registers());
            for &r in coi.registers() {
                assert!(set.contains(r));
            }
        }
    }

    #[test]
    fn union_intersect_jaccard() {
        let (n, props) = two_chains();
        let a = Coi::of(&n, [props[0].signal]).register_set(&n); // chain 0: r1, r2
        let b = Coi::of(&n, [props[2].signal]).register_set(&n); // chain 1: r1, r2
        let u = a.union(&b);
        assert_eq!(u.count(), 4);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.intersection_count(&b), 0);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
        // Sub-cone: property a2 watches only c0_r1.
        let sub = Coi::of(&n, [props[1].signal]).register_set(&n);
        assert_eq!(a.intersection_count(&sub), 1);
        assert!((a.jaccard(&sub) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_are_identical() {
        let a = CoiSet::empty(10);
        let b = CoiSet::empty(10);
        assert_eq!(a.jaccard(&b), 1.0);
        assert!(a.is_empty());
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn cluster_buckets_by_overlap() {
        let (n, props) = two_chains();
        let groups = PropertyGroups::cluster(&n, &props, 0.5);
        // a1 leads group 0; a2 (jaccard 0.5 with a1) joins it; b1 starts
        // group 1; bridge (jaccard 0.5 with both leaders, tie) joins the
        // lowest-index group.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups.groups()[0].members(), &[0, 1, 3]);
        assert_eq!(groups.groups()[1].members(), &[2]);
        assert_eq!(groups.num_non_singleton(), 1);
        // Group 0's union COI covers all four registers (bridge spans both).
        assert_eq!(groups.groups()[0].coi().count(), 4);
    }

    #[test]
    fn threshold_one_groups_only_identical_cones() {
        let (n, props) = two_chains();
        let groups = PropertyGroups::cluster(&n, &props, 1.0);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.num_non_singleton(), 0);
    }

    #[test]
    fn singletons_partition() {
        let (n, props) = two_chains();
        let groups = PropertyGroups::singletons(&n, &props);
        assert_eq!(groups.len(), props.len());
        for (i, g) in groups.groups().iter().enumerate() {
            assert_eq!(g.members(), &[i]);
            assert!(g.is_singleton());
        }
    }

    #[test]
    fn group_keys_are_joined_names() {
        let (n, props) = two_chains();
        let groups = PropertyGroups::cluster(&n, &props, 0.5);
        assert_eq!(groups.groups()[0].key(&props), "a1+a2+bridge");
        assert_eq!(groups.groups()[1].key(&props), "b1");
    }

    #[test]
    fn long_group_keys_truncate_deterministically() {
        let mut n = Netlist::new("long");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, r).unwrap();
        n.validate().unwrap();
        let props: Vec<Property> = (0..12)
            .map(|k| Property::never(&n, format!("very_long_property_name_{k}"), r))
            .collect();
        let groups = PropertyGroups::cluster(&n, &props, 0.5);
        assert_eq!(groups.len(), 1);
        let key = groups.groups()[0].key(&props);
        let again = groups.groups()[0].key(&props);
        assert_eq!(key, again);
        assert!(key.len() < 80, "key stays bounded: {key}");
        assert!(key.contains("more-"));
    }
}
