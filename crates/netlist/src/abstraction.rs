//! Abstract models: subcircuits induced by a set of registers.
//!
//! RFN's abstract models are subcircuits of the original design (Section 2.1
//! of the paper): a chosen set of registers keeps its update logic (the
//! transitive fanin of each register's data input, up to register outputs),
//! while every *excluded* register whose output the subcircuit reads becomes a
//! free *pseudo-input*. Because pseudo-inputs are unconstrained, the abstract
//! model over-approximates the original design, which is what makes proofs on
//! the abstraction sound for the original.

use std::collections::BTreeSet;

use crate::{transitive_fanin, Netlist, NetlistError, SignalId};

/// A set of registers selected to form an abstract model.
///
/// The set alone determines the subcircuit; call [`Abstraction::view`] to
/// materialize the subcircuit relative to a netlist and a set of extra root
/// signals (typically the property signals, which must be evaluable in the
/// abstract model).
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Abstraction};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let a = n.add_register("a", Some(false));
/// let b = n.add_register("b", Some(false));
/// let g = n.add_gate("g", GateOp::And, &[a, b]);
/// n.set_register_next(a, g)?;
/// n.set_register_next(b, a)?;
///
/// let mut abs = Abstraction::from_registers([a]);
/// assert!(abs.contains(a));
/// abs.insert(b);
/// assert_eq!(abs.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Abstraction {
    regs: BTreeSet<SignalId>,
}

impl Abstraction {
    /// Creates an empty abstraction (every register is a pseudo-input).
    pub fn new() -> Self {
        Abstraction::default()
    }

    /// Creates an abstraction containing the given registers.
    pub fn from_registers(regs: impl IntoIterator<Item = SignalId>) -> Self {
        Abstraction {
            regs: regs.into_iter().collect(),
        }
    }

    /// Whether the register is part of the abstract model.
    pub fn contains(&self, reg: SignalId) -> bool {
        self.regs.contains(&reg)
    }

    /// Adds a register; returns `true` if it was not already present.
    pub fn insert(&mut self, reg: SignalId) -> bool {
        self.regs.insert(reg)
    }

    /// Removes a register; returns `true` if it was present.
    pub fn remove(&mut self, reg: SignalId) -> bool {
        self.regs.remove(&reg)
    }

    /// Number of registers in the abstraction.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the abstraction contains no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Iterates over the registers in ascending signal order.
    pub fn iter(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.regs.iter().copied()
    }

    /// Materializes the abstract model `N` as a subcircuit of `netlist`.
    ///
    /// `extra_roots` are signals that must be evaluable inside the abstract
    /// model even if no abstraction register depends on them — in RFN these
    /// are the property signals (the watchdog output and the signals the
    /// property mentions).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotARegister`] if the abstraction contains a
    /// signal that is not a register of `netlist`, or
    /// [`NetlistError::UnknownSignal`] for out-of-range roots.
    pub fn view(
        &self,
        netlist: &Netlist,
        extra_roots: impl IntoIterator<Item = SignalId>,
    ) -> Result<AbstractView, NetlistError> {
        for &r in &self.regs {
            if r.index() >= netlist.num_signals() {
                return Err(NetlistError::UnknownSignal(r));
            }
            if !netlist.is_register(r) {
                return Err(NetlistError::NotARegister(r));
            }
        }
        let mut roots: Vec<SignalId> = Vec::new();
        for &r in &self.regs {
            roots.push(netlist.register_next(r));
        }
        for r in extra_roots {
            if r.index() >= netlist.num_signals() {
                return Err(NetlistError::UnknownSignal(r));
            }
            roots.push(r);
        }
        let cone = transitive_fanin(netlist, roots.iter().copied());
        let mut pseudo_inputs = Vec::new();
        for &leaf in &cone.register_leaves {
            if !self.regs.contains(&leaf) {
                pseudo_inputs.push(leaf);
            }
        }
        // Topologically order the view's gates using the global order.
        let mut in_view = vec![false; netlist.num_signals()];
        for &g in &cone.gates {
            in_view[g.index()] = true;
        }
        let gates: Vec<SignalId> = netlist
            .topo_order()?
            .into_iter()
            .filter(|g| in_view[g.index()])
            .collect();
        for &r in &self.regs {
            in_view[r.index()] = true;
        }
        for &i in &cone.inputs {
            in_view[i.index()] = true;
        }
        for &p in &pseudo_inputs {
            in_view[p.index()] = true;
        }
        for &c in &cone.constants {
            in_view[c.index()] = true;
        }
        let mut roots_sorted = roots;
        roots_sorted.sort_unstable();
        roots_sorted.dedup();
        Ok(AbstractView {
            registers: self.regs.iter().copied().collect(),
            pseudo_inputs,
            inputs: cone.inputs,
            constants: cone.constants,
            gates,
            in_view,
            roots: roots_sorted,
        })
    }
}

impl FromIterator<SignalId> for Abstraction {
    fn from_iter<I: IntoIterator<Item = SignalId>>(iter: I) -> Self {
        Abstraction::from_registers(iter)
    }
}

impl Extend<SignalId> for Abstraction {
    fn extend<I: IntoIterator<Item = SignalId>>(&mut self, iter: I) {
        self.regs.extend(iter);
    }
}

/// The materialized subcircuit of an [`Abstraction`]: the abstract model `N`.
///
/// The *primary inputs of `N`* are the union of [`AbstractView::inputs`]
/// (true primary inputs of the original design `M` that the cone reads) and
/// [`AbstractView::pseudo_inputs`] (register outputs of `M − N`, free in `N`).
#[derive(Clone, Debug)]
pub struct AbstractView {
    registers: Vec<SignalId>,
    pseudo_inputs: Vec<SignalId>,
    inputs: Vec<SignalId>,
    constants: Vec<SignalId>,
    gates: Vec<SignalId>,
    in_view: Vec<bool>,
    roots: Vec<SignalId>,
}

impl AbstractView {
    /// Registers of the abstract model, ascending signal order.
    pub fn registers(&self) -> &[SignalId] {
        &self.registers
    }

    /// Register outputs of the original design that act as free inputs of the
    /// abstract model.
    pub fn pseudo_inputs(&self) -> &[SignalId] {
        &self.pseudo_inputs
    }

    /// True primary inputs of the original design read by the abstract model.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Constant drivers read by the abstract model.
    pub fn constants(&self) -> &[SignalId] {
        &self.constants
    }

    /// Gates of the abstract model in topological order (fanins first).
    pub fn gates(&self) -> &[SignalId] {
        &self.gates
    }

    /// The root signals the view was built from (register next-state inputs
    /// plus property signals), deduplicated and sorted.
    pub fn roots(&self) -> &[SignalId] {
        &self.roots
    }

    /// All primary inputs of the abstract model `N`: true inputs followed by
    /// pseudo-inputs.
    pub fn free_inputs(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.inputs.iter().chain(self.pseudo_inputs.iter()).copied()
    }

    /// Whether the signal belongs to the abstract model (as gate, register,
    /// input, pseudo-input or constant).
    pub fn contains(&self, s: SignalId) -> bool {
        self.in_view.get(s.index()).copied().unwrap_or(false)
    }

    /// Number of gates in the abstract model.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of registers in the abstract model (Table 1, last column).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateOp;

    /// Two interacting registers plus an unrelated one.
    ///   a' = a AND b ; b' = a ; c' = i
    fn design() -> (Netlist, [SignalId; 5]) {
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let a = n.add_register("a", Some(true));
        let b = n.add_register("b", Some(true));
        let c = n.add_register("c", Some(false));
        let g = n.add_gate("g", GateOp::And, &[a, b]);
        n.set_register_next(a, g).unwrap();
        n.set_register_next(b, a).unwrap();
        n.set_register_next(c, i).unwrap();
        n.validate().unwrap();
        (n, [i, a, b, c, g])
    }

    #[test]
    fn excluded_register_becomes_pseudo_input() {
        let (n, [_, a, b, _, g]) = design();
        let abs = Abstraction::from_registers([a]);
        let view = abs.view(&n, []).unwrap();
        assert_eq!(view.registers(), &[a]);
        assert_eq!(view.pseudo_inputs(), &[b]);
        assert_eq!(view.gates(), &[g]);
        assert!(view.inputs().is_empty());
    }

    #[test]
    fn full_abstraction_has_no_pseudo_inputs() {
        let (n, [i, a, b, c, _]) = design();
        let abs = Abstraction::from_registers([a, b, c]);
        let view = abs.view(&n, []).unwrap();
        assert!(view.pseudo_inputs().is_empty());
        assert_eq!(view.inputs(), &[i]);
        assert_eq!(view.num_registers(), 3);
    }

    #[test]
    fn extra_roots_pull_in_logic() {
        let (n, [_, a, b, _, g]) = design();
        let abs = Abstraction::new();
        let view = abs.view(&n, [g]).unwrap();
        assert!(view.registers().is_empty());
        // g reads a and b; both are pseudo-inputs now.
        assert_eq!(view.pseudo_inputs(), &[a, b]);
        assert_eq!(view.gates(), &[g]);
    }

    #[test]
    fn non_register_in_abstraction_is_rejected() {
        let (n, [i, ..]) = design();
        let abs = Abstraction::from_registers([i]);
        assert!(matches!(
            abs.view(&n, []),
            Err(NetlistError::NotARegister(s)) if s == i
        ));
    }

    #[test]
    fn contains_covers_all_members() {
        let (n, [_, a, b, _, g]) = design();
        let abs = Abstraction::from_registers([a]);
        let view = abs.view(&n, []).unwrap();
        assert!(view.contains(a));
        assert!(view.contains(b)); // pseudo-input
        assert!(view.contains(g));
        let (_, [_, _, _, c, _]) = design();
        assert!(!view.contains(c));
    }

    #[test]
    fn set_operations() {
        let (_, [_, a, b, c, _]) = design();
        let mut abs = Abstraction::new();
        assert!(abs.is_empty());
        assert!(abs.insert(a));
        assert!(!abs.insert(a));
        abs.extend([b, c]);
        assert_eq!(abs.len(), 3);
        assert!(abs.remove(b));
        assert!(!abs.remove(b));
        let collected: Vec<_> = abs.iter().collect();
        assert_eq!(collected, vec![a, c]);
    }
}
