//! FORCE static variable pre-ordering.
//!
//! Sifting is powerful but reactive: it only runs once a BDD has already
//! blown up under a bad order, and its cost scales with the damage. This
//! module computes a good *initial* order before any BDD node exists,
//! from netlist topology alone, using the FORCE / center-of-gravity
//! heuristic (Aloul–Markov–Sakallah): model the ordering problem as
//! one-dimensional hypergraph arrangement, where
//!
//! * **vertices** are the model's variable-bearing elements — registers
//!   and free inputs — and
//! * **hyperedges** are the support sets of each register's next-state
//!   cone (the transition-partition supports, restricted to model
//!   elements), plus one edge per property/target cone.
//!
//! Each round moves every hyperedge to the center of gravity of its
//! vertices and every vertex to the mean of its edges' centers, then
//! re-ranks vertices by position. Total edge span (Σ max−min over edges)
//! decreases rapidly; the best arrangement over all rounds wins. The
//! result is deterministic: ties break on the previous round's rank.
//!
//! The symbolic model allocates its BDD variables in the returned order
//! (register current/next pairs stay interleaved as sift groups), so
//! variables that interact in the transition relation start out adjacent
//! instead of wherever the netlist generator happened to put them — the
//! refinement loop seeds this per-abstraction from the current COI for
//! free.

use std::collections::HashMap;

use crate::cone::transitive_fanin;
use crate::netlist::Netlist;
use crate::signal::SignalId;

/// Upper bound on center-of-gravity rounds; FORCE converges in
/// `O(log |V|)` rounds in practice, so this is generous.
const MAX_ROUNDS: usize = 40;

/// Computes a FORCE arrangement of the model elements `registers ∪
/// inputs`, returning them best-span first (top of the variable order).
///
/// `targets` contributes one extra hyperedge per target over that
/// target's fanin cone, pulling the property's support together near the
/// top of the order. Elements that appear in no hyperedge keep their
/// seed-relative position.
///
/// The seed arrangement is `registers` followed by `inputs` in the given
/// order — exactly the allocation order the symbolic model would use
/// without pre-ordering — so a degenerate hypergraph (no edges) returns
/// the status quo.
pub fn force_order(
    netlist: &Netlist,
    registers: &[SignalId],
    inputs: &[SignalId],
    targets: &[SignalId],
) -> Vec<SignalId> {
    let mut elements: Vec<SignalId> = Vec::with_capacity(registers.len() + inputs.len());
    elements.extend_from_slice(registers);
    elements.extend_from_slice(inputs);
    if elements.len() <= 2 {
        return elements;
    }
    let index: HashMap<SignalId, usize> =
        elements.iter().enumerate().map(|(i, &s)| (s, i)).collect();

    // Hyperedges as element-index sets. One per register's next-state
    // cone (the register itself plus every element its transition
    // partition reads), one per target cone.
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut push_edge = |mut edge: Vec<usize>| {
        edge.sort_unstable();
        edge.dedup();
        if edge.len() >= 2 {
            edges.push(edge);
        }
    };
    for &r in registers {
        let cone = transitive_fanin(netlist, [netlist.register_next(r)]);
        let mut edge: Vec<usize> = vec![index[&r]];
        for s in cone.register_leaves.iter().chain(cone.inputs.iter()) {
            if let Some(&i) = index.get(s) {
                edge.push(i);
            }
        }
        push_edge(edge);
    }
    for &t in targets {
        let cone = transitive_fanin(netlist, [t]);
        let mut edge: Vec<usize> = Vec::new();
        for s in cone.register_leaves.iter().chain(cone.inputs.iter()) {
            if let Some(&i) = index.get(s) {
                edge.push(i);
            }
        }
        push_edge(edge);
    }
    if edges.is_empty() {
        return elements;
    }

    // edges_of[v] = indices of the hyperedges containing element v.
    let mut edges_of: Vec<Vec<usize>> = vec![Vec::new(); elements.len()];
    for (e, edge) in edges.iter().enumerate() {
        for &v in edge {
            edges_of[v].push(e);
        }
    }

    // pos[v] = current rank of element v. Seed = creation order.
    let mut pos: Vec<usize> = (0..elements.len()).collect();
    let span = |pos: &[usize]| -> usize {
        edges
            .iter()
            .map(|edge| {
                let (mut lo, mut hi) = (usize::MAX, 0usize);
                for &v in edge {
                    lo = lo.min(pos[v]);
                    hi = hi.max(pos[v]);
                }
                hi - lo
            })
            .sum()
    };
    let mut best_pos = pos.clone();
    let mut best_span = span(&pos);

    for _ in 0..MAX_ROUNDS {
        // Hyperedge centers of gravity under the current arrangement.
        let cogs: Vec<f64> = edges
            .iter()
            .map(|edge| edge.iter().map(|&v| pos[v] as f64).sum::<f64>() / edge.len() as f64)
            .collect();
        // Each vertex moves to the mean of its edges' centers; isolated
        // vertices keep their position.
        let mut keyed: Vec<(f64, usize, usize)> = (0..elements.len())
            .map(|v| {
                let key = if edges_of[v].is_empty() {
                    pos[v] as f64
                } else {
                    edges_of[v].iter().map(|&e| cogs[e]).sum::<f64>() / edges_of[v].len() as f64
                };
                // Tie-break on the previous rank keeps the pass
                // deterministic and stable under symmetric structure.
                (key, pos[v], v)
            })
            .collect();
        keyed.sort_by(|a, b| a.partial_cmp(b).expect("keys are finite"));
        let mut next = vec![0usize; elements.len()];
        for (rank, &(_, _, v)) in keyed.iter().enumerate() {
            next[v] = rank;
        }
        if next == pos {
            break; // fixpoint
        }
        pos = next;
        let s = span(&pos);
        if s < best_span {
            best_span = s;
            best_pos = pos.clone();
        }
    }

    let mut arranged: Vec<(usize, SignalId)> = elements
        .iter()
        .enumerate()
        .map(|(v, &s)| (best_pos[v], s))
        .collect();
    arranged.sort_unstable_by_key(|&(rank, _)| rank);
    arranged.into_iter().map(|(_, s)| s).collect()
}

/// Total hyperedge span of an arrangement — the quantity FORCE
/// minimizes. Exposed so callers (benches, tests) can compare the seed
/// arrangement against the computed one.
pub fn arrangement_span(
    netlist: &Netlist,
    registers: &[SignalId],
    arrangement: &[SignalId],
) -> usize {
    let pos: HashMap<SignalId, usize> = arrangement
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    let mut total = 0usize;
    for &r in registers {
        let cone = transitive_fanin(netlist, [netlist.register_next(r)]);
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        let mut seen = false;
        for s in std::iter::once(&r)
            .chain(cone.register_leaves.iter())
            .chain(cone.inputs.iter())
        {
            if let Some(&p) = pos.get(s) {
                lo = lo.min(p);
                hi = hi.max(p);
                seen = true;
            }
        }
        if seen {
            total += hi - lo;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateOp;

    /// A chain of 2-bit shift stages where stage k feeds stage k+1:
    /// a deliberately scrambled creation order should be unscrambled by
    /// FORCE so chained stages end up adjacent.
    fn chained_stages(stages: usize) -> (Netlist, Vec<SignalId>) {
        let mut n = Netlist::new("chain");
        let input = n.add_input("in");
        let regs: Vec<SignalId> = (0..stages)
            .map(|k| n.add_register(&format!("r{k}"), Some(false)))
            .collect();
        // Creation order r0..r{k}, but the data flow chains
        // r0 <- in, r1 <- r0, ... through a gate each.
        for k in 0..stages {
            let src = if k == 0 { input } else { regs[k - 1] };
            let g = n.add_gate(&format!("g{k}"), GateOp::Buf, &[src]);
            n.set_register_next(regs[k], g).unwrap();
        }
        n.validate().unwrap();
        (n, regs)
    }

    #[test]
    fn force_is_deterministic_and_permutes() {
        let (n, regs) = chained_stages(8);
        let inputs = n.inputs().to_vec();
        let a = force_order(&n, &regs, &inputs, &[]);
        let b = force_order(&n, &regs, &inputs, &[]);
        assert_eq!(a, b, "same inputs must give the same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let mut want: Vec<SignalId> = regs.iter().chain(inputs.iter()).copied().collect();
        want.sort_unstable();
        assert_eq!(sorted, want, "result must be a permutation of the elements");
    }

    #[test]
    fn force_does_not_worsen_span() {
        let (n, regs) = chained_stages(12);
        let inputs = n.inputs().to_vec();
        let seed: Vec<SignalId> = regs.iter().chain(inputs.iter()).copied().collect();
        let forced = force_order(&n, &regs, &inputs, &[]);
        assert!(
            arrangement_span(&n, &regs, &forced) <= arrangement_span(&n, &regs, &seed),
            "FORCE must never return a worse arrangement than the seed"
        );
    }

    #[test]
    fn force_improves_scrambled_interleaving() {
        // Two independent chains, created interleaved: a0 b0 a1 b1 …
        // The seed order interleaves unrelated chains; FORCE should
        // separate them and cut the span strictly.
        let mut n = Netlist::new("two-chains");
        let stages = 6;
        let mut a_regs = Vec::new();
        let mut b_regs = Vec::new();
        for k in 0..stages {
            a_regs.push(n.add_register(&format!("a{k}"), Some(false)));
            b_regs.push(n.add_register(&format!("b{k}"), Some(false)));
        }
        for k in 0..stages {
            let asrc = if k == 0 {
                a_regs[stages - 1]
            } else {
                a_regs[k - 1]
            };
            let bsrc = if k == 0 {
                b_regs[stages - 1]
            } else {
                b_regs[k - 1]
            };
            let ga = n.add_gate(&format!("ga{k}"), GateOp::Not, &[asrc]);
            let gb = n.add_gate(&format!("gb{k}"), GateOp::Not, &[bsrc]);
            n.set_register_next(a_regs[k], ga).unwrap();
            n.set_register_next(b_regs[k], gb).unwrap();
        }
        n.validate().unwrap();
        let regs: Vec<SignalId> = n.registers().to_vec();
        let seed = regs.clone();
        let forced = force_order(&n, &regs, &[], &[]);
        let before = arrangement_span(&n, &regs, &seed);
        let after = arrangement_span(&n, &regs, &forced);
        assert!(
            after < before,
            "interleaved chains should improve: span {before} -> {after}"
        );
    }

    #[test]
    fn tiny_and_edgeless_models_return_seed_order() {
        let mut n = Netlist::new("tiny");
        let i = n.add_input("i");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, i).unwrap();
        n.validate().unwrap();
        assert_eq!(force_order(&n, &[r], &[i], &[]), vec![r, i]);
        assert_eq!(force_order(&n, &[], &[], &[]), Vec::new());
    }
}
