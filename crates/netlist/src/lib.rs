//! Gate-level netlist infrastructure for the RFN verification tool.
//!
//! This crate provides the *substrate* every RFN engine operates on: a
//! gate-level design representation in the sense of the DAC 2001 paper
//! ["Formal Property Verification by Abstraction Refinement with Formal,
//! Simulation and Hybrid Engines"]. A gate-level design `M = (G, L)` is a set
//! of gates `G` plus a set of registers `L`; every engine in the tool
//! (3-valued simulation, ATPG, BDD-based model checking, the RFN loop itself)
//! consumes the [`Netlist`] type defined here.
//!
//! The crate covers:
//!
//! * the netlist IR itself ([`Netlist`], [`SignalId`], [`GateOp`]) with a
//!   builder-style construction API and structural validation,
//! * sparse signal valuations and traces ([`Cube`], [`Trace`]) shared by all
//!   engines,
//! * cone-of-influence and transitive-fanin computations ([`Coi`],
//!   [`transitive_fanin`]) used to size designs and seed abstractions,
//! * COI bitsets and COI-overlap property clustering ([`CoiSet`],
//!   [`PropertyGroups`]) scheduling multi-property group verification,
//! * *abstract models*: subcircuits induced by a set of registers
//!   ([`Abstraction`], [`AbstractView`]) where excluded registers become free
//!   pseudo-inputs,
//! * the *free-cut* and *min-cut* designs of Section 2.2 of the paper
//!   ([`FreeCut`], [`MinCut`], [`compute_min_cut`]), computed with a Dinic
//!   max-flow on the node-split signal graph,
//! * a small line-oriented text format for netlists ([`parse_netlist`],
//!   [`write_netlist`]) so designs can be stored and diffed,
//! * an AIGER reader/writer ([`parse_aiger`], [`write_aiger`]) covering the
//!   ascii `.aag` and binary `.aig` exchange formats of the HWMCC
//!   benchmark community, with bad-state literals mapped to [`Property`]s,
//! * FORCE / center-of-gravity static variable pre-ordering over netlist
//!   topology ([`force_order`]) and a stable structural fingerprint
//!   ([`Netlist::structural_hash`]) keying the persistent order store.
//!
//! # Example
//!
//! Build a 2-bit counter with a saturation flag and extract its abstraction:
//!
//! ```
//! use rfn_netlist::{Netlist, GateOp, Abstraction};
//!
//! # fn main() -> Result<(), rfn_netlist::NetlistError> {
//! let mut n = Netlist::new("counter");
//! let b0 = n.add_register("b0", Some(false));
//! let b1 = n.add_register("b1", Some(false));
//! let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
//! let carry = n.add_gate("carry", GateOp::And, &[b0, b1]);
//! let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
//! n.set_register_next(b0, n0)?;
//! n.set_register_next(b1, n1)?;
//! n.add_output("carry", carry);
//! n.validate()?;
//!
//! // Abstract model containing only bit 0: bit 1 becomes a pseudo-input.
//! let abs = Abstraction::from_registers([b0]);
//! let view = abs.view(&n, [carry])?;
//! assert_eq!(view.registers(), &[b0]);
//! assert_eq!(view.pseudo_inputs(), &[b1]);
//! # Ok(())
//! # }
//! ```
//!
//! ["Formal Property Verification by Abstraction Refinement with Formal,
//! Simulation and Hybrid Engines"]: https://doi.org/10.1145/378239.378490

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstraction;
mod aiger;
mod cone;
mod cube;
mod error;
mod group;
mod mincut;
mod netlist;
pub mod order;
mod parse;
mod property;
mod signal;

pub use abstraction::{AbstractView, Abstraction};
pub use aiger::{
    parse_aiger, write_aiger, write_aiger_ascii, write_aiger_binary, AigerDesign, ParseError,
};
pub use cone::{transitive_fanin, transitive_fanout_gates, Coi};
pub use cube::{Cube, CubeConflict, Trace, TraceStep};
pub use error::NetlistError;
pub use group::{CoiSet, PropertyGroup, PropertyGroups};
pub use mincut::{compute_free_cut, compute_min_cut, FreeCut, MinCut};
pub use netlist::{Net, NetKind, Netlist};
pub use order::{arrangement_span, force_order};
pub use parse::{parse_netlist, write_netlist};
pub use property::{CoverageSet, Property};
pub use signal::{GateOp, SignalId};
