//! Cubes (partial signal valuations) and traces.
//!
//! A *cube* in the paper's sense is a valuation of *some* signals of a design;
//! a *state* is a valuation of all registers; an *input vector* a valuation of
//! all primary inputs. All engines exchange partial valuations, so [`Cube`] is
//! the lingua franca of the tool: ATPG targets, error-trace steps, constraint
//! cubes for guided search and refinement all use it.

use std::fmt;

use crate::{Netlist, SignalId};

/// A partial valuation of signals: a set of `(signal, value)` literals.
///
/// Literals are kept sorted by signal and deduplicated, so equality is
/// semantic. Inserting a conflicting literal is reported rather than silently
/// overwriting, because a conflicting merge means a bug in an engine.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Cube, SignalId};
///
/// let a = SignalId::from_index(0);
/// let b = SignalId::from_index(1);
/// let mut c = Cube::new();
/// c.insert(b, true).unwrap();
/// c.insert(a, false).unwrap();
/// assert_eq!(c.get(a), Some(false));
/// assert_eq!(c.len(), 2);
/// assert!(c.insert(a, true).is_err()); // conflicting literal
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<(SignalId, bool)>,
}

/// Error returned when inserting or merging conflicting literals into a
/// [`Cube`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeConflict {
    /// The signal assigned both polarities.
    pub signal: SignalId,
}

impl fmt::Display for CubeConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflicting literals on signal {}", self.signal)
    }
}

impl std::error::Error for CubeConflict {}

impl Cube {
    /// Creates an empty cube (the constant-true valuation).
    pub fn new() -> Self {
        Cube::default()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the cube has no literals.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The value assigned to `s`, if any.
    pub fn get(&self, s: SignalId) -> Option<bool> {
        self.lits
            .binary_search_by_key(&s, |&(sig, _)| sig)
            .ok()
            .map(|i| self.lits[i].1)
    }

    /// Whether the cube assigns `s`.
    pub fn contains(&self, s: SignalId) -> bool {
        self.get(s).is_some()
    }

    /// Adds the literal `s = value`.
    ///
    /// Re-inserting an identical literal is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`CubeConflict`] if `s` is already assigned the opposite value.
    pub fn insert(&mut self, s: SignalId, value: bool) -> Result<(), CubeConflict> {
        match self.lits.binary_search_by_key(&s, |&(sig, _)| sig) {
            Ok(i) => {
                if self.lits[i].1 != value {
                    Err(CubeConflict { signal: s })
                } else {
                    Ok(())
                }
            }
            Err(i) => {
                self.lits.insert(i, (s, value));
                Ok(())
            }
        }
    }

    /// Removes the literal on `s`, returning its value if present.
    pub fn remove(&mut self, s: SignalId) -> Option<bool> {
        match self.lits.binary_search_by_key(&s, |&(sig, _)| sig) {
            Ok(i) => Some(self.lits.remove(i).1),
            Err(_) => None,
        }
    }

    /// Merges all literals of `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CubeConflict`] encountered; `self` may then hold a
    /// prefix of `other`'s literals.
    pub fn merge(&mut self, other: &Cube) -> Result<(), CubeConflict> {
        for &(s, v) in &other.lits {
            self.insert(s, v)?;
        }
        Ok(())
    }

    /// Whether `self` and `other` assign some signal opposite values.
    pub fn conflicts_with(&self, other: &Cube) -> bool {
        // Merge-join over the two sorted literal lists.
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            let (sa, va) = self.lits[i];
            let (sb, vb) = other.lits[j];
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if va != vb {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// Whether every literal of `other` is also in `self` (i.e. `self ⇒
    /// other` as a conjunction of literals).
    pub fn implies(&self, other: &Cube) -> bool {
        other.lits.iter().all(|&(s, v)| self.get(s) == Some(v))
    }

    /// Returns the sub-cube of literals whose signal satisfies `pred`.
    pub fn filter(&self, mut pred: impl FnMut(SignalId) -> bool) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|&(s, _)| pred(s))
                .collect(),
        }
    }

    /// Iterates over the literals in ascending signal order.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, bool)> + '_ {
        self.lits.iter().copied()
    }

    /// Renders the cube with netlist signal names, e.g. `req=1 ack=0`.
    pub fn display<'a>(&'a self, netlist: &'a Netlist) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Cube, &'a Netlist);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, (s, v)) in self.0.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{}={}", self.1.label(s), u8::from(v))?;
                }
                Ok(())
            }
        }
        D(self, netlist)
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Cube{")?;
        for (i, (s, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{s}={}", u8::from(v))?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(SignalId, bool)> for Cube {
    /// Collects literals into a cube.
    ///
    /// # Panics
    ///
    /// Panics if the literals conflict; use [`Cube::insert`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = (SignalId, bool)>>(iter: I) -> Self {
        let mut c = Cube::new();
        for (s, v) in iter {
            c.insert(s, v).expect("conflicting literals in cube");
        }
        c
    }
}

impl Extend<(SignalId, bool)> for Cube {
    /// Extends the cube with literals.
    ///
    /// # Panics
    ///
    /// Panics if a literal conflicts with an existing one.
    fn extend<I: IntoIterator<Item = (SignalId, bool)>>(&mut self, iter: I) {
        for (s, v) in iter {
            self.insert(s, v).expect("conflicting literals in cube");
        }
    }
}

/// One step of a [`Trace`]: the state cube at a cycle plus the input cube
/// applied during that cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStep {
    /// Partial valuation of register outputs at this cycle.
    pub state: Cube,
    /// Partial valuation of primary inputs applied during this cycle.
    ///
    /// Empty on the final step of a trace (no transition is taken from the
    /// last state).
    pub inputs: Cube,
}

/// A (partial) trace `a_1, v_1, a_2, v_2, …, a_k` of a design: a sequence of
/// state cubes connected by input cubes.
///
/// Cubes may be partial: signals not mentioned are unconstrained. An *error
/// trace* for an unreachability property starts in an initial state and ends
/// in a target state.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Cube, Trace, TraceStep, SignalId};
///
/// let r = SignalId::from_index(0);
/// let mut t = Trace::new();
/// t.push(TraceStep { state: [(r, false)].into_iter().collect(), inputs: Cube::new() });
/// t.push(TraceStep { state: [(r, true)].into_iter().collect(), inputs: Cube::new() });
/// assert_eq!(t.num_cycles(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of states in the trace (`k` in the paper's notation).
    pub fn num_cycles(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps, first state first.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Mutable access to the steps.
    pub fn steps_mut(&mut self) -> &mut [TraceStep] {
        &mut self.steps
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Prepends a step (the hybrid trace engine builds traces back to front).
    pub fn push_front(&mut self, step: TraceStep) {
        self.steps.insert(0, step);
    }

    /// The final state cube, if the trace is non-empty.
    pub fn last_state(&self) -> Option<&Cube> {
        self.steps.last().map(|s| &s.state)
    }

    /// Renders the trace with netlist signal names, one cycle per line.
    pub fn display<'a>(&'a self, netlist: &'a Netlist) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Trace, &'a Netlist);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, step) in self.0.steps.iter().enumerate() {
                    writeln!(f, "cycle {i}: state [{}]", step.state.display(self.1))?;
                    if !step.inputs.is_empty() {
                        writeln!(f, "         inputs [{}]", step.inputs.display(self.1))?;
                    }
                }
                Ok(())
            }
        }
        D(self, netlist)
    }
}

impl FromIterator<TraceStep> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceStep>>(iter: I) -> Self {
        Trace {
            steps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SignalId {
        SignalId::from_index(i)
    }

    #[test]
    fn insert_keeps_sorted_and_deduped() {
        let mut c = Cube::new();
        c.insert(s(5), true).unwrap();
        c.insert(s(1), false).unwrap();
        c.insert(s(3), true).unwrap();
        c.insert(s(3), true).unwrap(); // duplicate ok
        let lits: Vec<_> = c.iter().collect();
        assert_eq!(lits, vec![(s(1), false), (s(3), true), (s(5), true)]);
    }

    #[test]
    fn conflicting_insert_fails() {
        let mut c = Cube::new();
        c.insert(s(2), true).unwrap();
        assert_eq!(c.insert(s(2), false), Err(CubeConflict { signal: s(2) }));
    }

    #[test]
    fn conflicts_with_detects_opposite_literals() {
        let a: Cube = [(s(0), true), (s(2), false)].into_iter().collect();
        let b: Cube = [(s(1), true), (s(2), true)].into_iter().collect();
        let c: Cube = [(s(1), true), (s(3), true)].into_iter().collect();
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
        assert!(!a.conflicts_with(&Cube::new()));
    }

    #[test]
    fn implies_is_literal_containment() {
        let big: Cube = [(s(0), true), (s(1), false), (s(2), true)]
            .into_iter()
            .collect();
        let small: Cube = [(s(0), true), (s(2), true)].into_iter().collect();
        assert!(big.implies(&small));
        assert!(!small.implies(&big));
        assert!(big.implies(&Cube::new()));
    }

    #[test]
    fn merge_accumulates_or_conflicts() {
        let mut a: Cube = [(s(0), true)].into_iter().collect();
        let b: Cube = [(s(1), false)].into_iter().collect();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        let c: Cube = [(s(0), false)].into_iter().collect();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn filter_and_remove() {
        let mut a: Cube = [(s(0), true), (s(1), false), (s(4), true)]
            .into_iter()
            .collect();
        let even = a.filter(|sig| sig.index() % 2 == 0);
        assert_eq!(even.len(), 2);
        assert_eq!(a.remove(s(1)), Some(false));
        assert_eq!(a.remove(s(1)), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn trace_front_and_back() {
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(s(0), true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t.push_front(TraceStep {
            state: [(s(0), false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert_eq!(t.num_cycles(), 2);
        assert_eq!(t.steps()[0].state.get(s(0)), Some(false));
        assert_eq!(t.last_state().unwrap().get(s(0)), Some(true));
    }

    #[test]
    fn cube_display_uses_names() {
        let mut n = Netlist::new("d");
        let a = n.add_input("req");
        let c: Cube = [(a, true)].into_iter().collect();
        assert_eq!(format!("{}", c.display(&n)), "req=1");
    }
}
