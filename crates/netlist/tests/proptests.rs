//! Property-based tests for the netlist substrate.

use proptest::prelude::*;
use rfn_netlist::{
    compute_free_cut, compute_min_cut, parse_aiger, parse_netlist, transitive_fanin,
    write_aiger_ascii, write_aiger_binary, write_netlist, Abstraction, Coi, Cube, GateOp, Netlist,
    Property, PropertyGroups, SignalId,
};

/// Generates a random layered sequential netlist: `n_inputs` inputs,
/// `n_regs` registers, `n_gates` gates whose fanins point at earlier nets.
fn arb_netlist(n_inputs: usize, n_regs: usize, n_gates: usize) -> impl Strategy<Value = Netlist> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
    ]);
    // For each gate: op + two fanin picks (indices reduced mod available nets).
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    // For each register: next picked among all nets.
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts).prop_map(move |(gates, nexts)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            let g = n.add_gate(&format!("g{k}"), op, &fanins);
            pool.push(g);
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            let target = pool[nx as usize % pool.len()];
            n.set_register_next(regs[k], target).unwrap();
        }
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random layered netlists always validate (no comb cycles by construction).
    #[test]
    fn random_netlists_validate(n in arb_netlist(3, 4, 12)) {
        prop_assert!(n.validate().is_ok());
    }

    /// AIGER write∘parse is idempotent on random rich-gate netlists: the
    /// first write lowers XOR/NAND/… to and-inverter form, and re-writing
    /// the parsed AIG reproduces the file byte for byte (same and ordering,
    /// same literals, same symbol table). Properties survive with their
    /// names, and latch resets survive as register inits.
    #[test]
    fn aiger_write_parse_is_idempotent(
        n in arb_netlist(3, 4, 12),
        target in any::<u32>(),
        value in any::<bool>(),
    ) {
        let num_signals = n.signals().count();
        let watch = SignalId::from_index(target as usize % num_signals);
        let props = vec![Property::never_value("watch", watch, value)];
        let once = write_aiger_ascii(&n, &props).unwrap();
        let d = parse_aiger(&once, "arb").unwrap();
        prop_assert_eq!(d.properties.len(), 1);
        prop_assert_eq!(&d.properties[0].name, "watch");
        prop_assert_eq!(d.netlist.inputs().len(), n.inputs().len());
        prop_assert_eq!(d.netlist.registers().len(), n.registers().len());
        for (&a, &b) in n.registers().iter().zip(d.netlist.registers()) {
            prop_assert_eq!(n.register_init(a), d.netlist.register_init(b));
        }
        let twice = write_aiger_ascii(&d.netlist, &d.properties).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// The binary writer serializes the same and-inverter graph as the
    /// ascii writer: parsing either yields structurally identical netlists
    /// and identical re-serializations.
    #[test]
    fn aiger_binary_and_ascii_agree(
        n in arb_netlist(3, 4, 12),
        target in any::<u32>(),
    ) {
        let num_signals = n.signals().count();
        let watch = SignalId::from_index(target as usize % num_signals);
        let props = vec![Property::never_value("watch", watch, true)];
        let asc = parse_aiger(&write_aiger_ascii(&n, &props).unwrap(), "arb").unwrap();
        let bin = parse_aiger(&write_aiger_binary(&n, &props).unwrap(), "arb").unwrap();
        prop_assert!(!asc.binary);
        prop_assert!(bin.binary);
        prop_assert_eq!(asc.netlist.structural_hash(), bin.netlist.structural_hash());
        prop_assert_eq!(
            write_aiger_ascii(&asc.netlist, &asc.properties).unwrap(),
            write_aiger_ascii(&bin.netlist, &bin.properties).unwrap()
        );
    }

    /// The text format round-trips structurally.
    #[test]
    fn text_format_round_trips(n in arb_netlist(3, 4, 12)) {
        let text = write_netlist(&n);
        let n2 = parse_netlist(&text).unwrap();
        prop_assert_eq!(n2.num_gates(), n.num_gates());
        prop_assert_eq!(n2.num_registers(), n.num_registers());
        prop_assert_eq!(n2.inputs().len(), n.inputs().len());
        // And a second round trip is a fixpoint.
        prop_assert_eq!(write_netlist(&n2), text);
    }

    /// The COI of a register set is monotone under union.
    #[test]
    fn coi_is_monotone(n in arb_netlist(3, 5, 15), pick in any::<u8>()) {
        let regs = n.registers();
        let a = regs[pick as usize % regs.len()];
        let b = regs[(pick as usize + 1) % regs.len()];
        let coi_a = Coi::of(&n, [a]);
        let coi_ab = Coi::of(&n, [a, b]);
        for r in coi_a.registers() {
            prop_assert!(coi_ab.registers().contains(r));
        }
        for g in coi_a.gates() {
            prop_assert!(coi_ab.gates().contains(g));
        }
    }

    /// Transitive fanin gates of any signal lie inside its COI gate set.
    #[test]
    fn fanin_within_coi(n in arb_netlist(3, 4, 12), pick in any::<u8>()) {
        let regs = n.registers();
        let r = regs[pick as usize % regs.len()];
        let cone = transitive_fanin(&n, [n.register_next(r)]);
        let coi = Coi::of(&n, [r]);
        for g in &cone.gates {
            prop_assert!(coi.gates().contains(g));
        }
    }

    /// Min-cut inputs never exceed the trivial cut (the view's free inputs),
    /// and removing the cut disconnects free inputs from the free-cut design.
    #[test]
    fn mincut_is_valid_and_no_wider_than_trivial(
        n in arb_netlist(4, 4, 16),
        mask in 1u8..15,
    ) {
        let regs: Vec<SignalId> = n
            .registers()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, r)| *r)
            .collect();
        let view = Abstraction::from_registers(regs).view(&n, []).unwrap();
        let fc = compute_free_cut(&n, &view);
        let mc = compute_min_cut(&n, &view);
        prop_assert!(mc.num_inputs() <= mc.original_input_count);

        // Validity: block at cut signals, propagate from free inputs, and
        // check no free-cut consumer fanin is reached.
        let mut reach = vec![false; n.num_signals()];
        for i in view.free_inputs() {
            if !mc.is_cut_signal(i) {
                reach[i.index()] = true;
            }
        }
        for &g in view.gates() {
            if mc.is_cut_signal(g) {
                continue;
            }
            if n.fanins(g).iter().any(|f| reach[f.index()]) {
                reach[g.index()] = true;
            }
        }
        for &g in &fc.gates {
            for &f in n.fanins(g) {
                prop_assert!(!reach[f.index()], "cut leaks into free-cut gate fanin");
            }
        }
        for &r in view.registers() {
            prop_assert!(!reach[n.register_next(r).index()], "cut leaks into register input");
        }
    }

    /// Cube merge is commutative when conflict-free.
    #[test]
    fn cube_merge_commutes(
        lits_a in prop::collection::vec((0u32..20, any::<bool>()), 0..8),
        lits_b in prop::collection::vec((20u32..40, any::<bool>()), 0..8),
    ) {
        let mk = |lits: &[(u32, bool)]| {
            let mut c = Cube::new();
            for &(s, v) in lits {
                let _ = c.insert(SignalId::from_index(s as usize), v);
            }
            c
        };
        let a = mk(&lits_a);
        let b = mk(&lits_b);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// The COI bitset agrees signal-for-signal with the traversal-based COI.
    #[test]
    fn coi_bitset_matches_traversal(n in arb_netlist(3, 5, 15), pick in any::<u8>()) {
        let regs = n.registers();
        let r = regs[pick as usize % regs.len()];
        let coi = Coi::of(&n, [r]);
        let set = coi.register_set(&n);
        prop_assert_eq!(set.to_signals(), coi.registers().to_vec());
        prop_assert_eq!(set.count(), coi.num_registers());
        for s in n.registers() {
            prop_assert_eq!(set.contains(*s), coi.registers().contains(s));
        }
    }

    /// Bitset union of single-root COIs equals the multi-root COI (COI is a
    /// closure, so the traversal from both roots is the union of traversals).
    #[test]
    fn coi_bitset_union_matches_multi_root(n in arb_netlist(3, 5, 15), pick in any::<u8>()) {
        let regs = n.registers();
        let a = regs[pick as usize % regs.len()];
        let b = regs[(pick as usize / 7 + 3) % regs.len()];
        let sa = Coi::of(&n, [a]).register_set(&n);
        let sb = Coi::of(&n, [b]).register_set(&n);
        let both = Coi::of(&n, [a, b]).register_set(&n);
        prop_assert_eq!(&sa.union(&sb), &both);
        // Intersection is contained in each operand, and Jaccard is a
        // symmetric similarity in [0, 1] that is 1 on identical sets.
        let inter = sa.intersect(&sb);
        for s in inter.iter() {
            prop_assert!(sa.contains(s) && sb.contains(s));
        }
        prop_assert_eq!(inter.count(), sa.intersection_count(&sb));
        let j = sa.jaccard(&sb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(sb.jaccard(&sa), j);
        prop_assert_eq!(sa.jaccard(&sa), 1.0);
    }

    /// Clustering yields a deterministic partition whose group COIs are the
    /// unions of their members' COIs; a threshold above 1 forces singletons.
    #[test]
    fn clustering_partitions_properties(n in arb_netlist(3, 5, 15), t in 0u8..11) {
        let props: Vec<Property> = n
            .registers()
            .iter()
            .enumerate()
            .map(|(k, &r)| Property::never(&n, format!("p{k}"), r))
            .collect();
        let threshold = f64::from(t) / 10.0;
        let groups = PropertyGroups::cluster(&n, &props, threshold);
        let again = PropertyGroups::cluster(&n, &props, threshold);
        prop_assert_eq!(groups.len(), again.len());
        let mut seen = vec![false; props.len()];
        for (g, g2) in groups.groups().iter().zip(again.groups()) {
            prop_assert_eq!(g.members(), g2.members());
            let mut expect = rfn_netlist::CoiSet::empty(n.num_signals());
            for &m in g.members() {
                prop_assert!(!seen[m], "property in two groups");
                seen[m] = true;
                expect.union_with(&Coi::of(&n, [props[m].signal]).register_set(&n));
            }
            prop_assert_eq!(g.coi(), &expect);
            let mut sorted = g.members().to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(g.members(), &sorted[..]);
        }
        prop_assert!(seen.iter().all(|&s| s), "property missing from partition");
        let singletons = PropertyGroups::cluster(&n, &props, 1.1);
        prop_assert_eq!(singletons.len(), props.len());
        prop_assert_eq!(singletons.num_non_singleton(), 0);
    }

    /// `implies` is reflexive and transitive over random cubes.
    #[test]
    fn cube_implies_preorder(
        lits in prop::collection::vec((0u32..10, any::<bool>()), 0..10),
        cut1 in 0usize..10,
    ) {
        let mut full = Cube::new();
        for &(s, v) in &lits {
            let _ = full.insert(SignalId::from_index(s as usize), v);
        }
        let part = full.filter(|s| s.index() >= cut1.min(9));
        prop_assert!(full.implies(&full));
        prop_assert!(full.implies(&part));
        let smaller = part.filter(|s| s.index() % 2 == 0);
        prop_assert!(part.implies(&smaller));
        prop_assert!(full.implies(&smaller)); // transitivity witness
    }
}
