//! Seeded random design/property fuzzer.
//!
//! [`fuzz_design`] turns a 64-bit seed into a small sequential [`Design`]
//! with one to three safety properties — deterministically, so a failing
//! seed printed by the `fuzzbench` differential harness reproduces the
//! exact netlist anywhere. The generated designs mix every [`GateOp`],
//! registers with known and unknown reset values, sticky watchdog
//! properties (falsified at a depth the design's random structure decides)
//! and direct signal properties (including trivially-true and
//! depth-0-falsified edge cases), so the RFN/plain-MC/BMC engines are
//! exercised across their full verdict space.
//!
//! [`shrink_design`] reduces a disagreeing design while a caller-supplied
//! predicate keeps failing: it first projects the netlist onto the
//! property's sequential cone of influence, then greedily frees registers
//! into primary inputs — the classic delta-debugging loop, sound because
//! the predicate re-checks every candidate.

use std::collections::{HashMap, HashSet};

use rfn_netlist::{GateOp, NetKind, Netlist, Property, SignalId};

use crate::Design;

/// Deterministic xorshift64* generator; the fuzzer's only entropy source.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // Scramble with splitmix64 so nearby seeds diverge and 0 is legal.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

/// Size envelope for generated designs.
#[derive(Clone, Debug)]
pub struct FuzzParams {
    /// Seed driving every random choice.
    pub seed: u64,
    /// Maximum primary inputs (at least 1 is always generated).
    pub max_inputs: usize,
    /// Maximum registers (at least 2 are always generated).
    pub max_registers: usize,
    /// Maximum random gates (at least 4 are always generated).
    pub max_gates: usize,
    /// Maximum properties (at least 1 is always generated).
    pub max_properties: usize,
    /// Whether registers may get an unknown (`None`) reset value.
    pub allow_unknown_init: bool,
}

impl Default for FuzzParams {
    fn default() -> Self {
        FuzzParams {
            seed: 0,
            max_inputs: 3,
            max_registers: 8,
            max_gates: 32,
            max_properties: 3,
            allow_unknown_init: true,
        }
    }
}

/// Generates the design for a seed with the default [`FuzzParams`] envelope.
pub fn fuzz_design(seed: u64) -> Design {
    fuzz_design_with(&FuzzParams {
        seed,
        ..FuzzParams::default()
    })
}

/// Generates a random design within the given size envelope.
///
/// Deterministic: equal parameters always produce the identical netlist.
pub fn fuzz_design_with(params: &FuzzParams) -> Design {
    let mut rng = XorShift64::new(params.seed);
    let mut n = Netlist::new(format!("fuzz{}", params.seed));

    let n_inputs = 1 + rng.below(params.max_inputs.max(1));
    let n_regs = 2 + rng.below(params.max_registers.saturating_sub(1).max(1));
    let n_gates = 4 + rng.below(params.max_gates.saturating_sub(3).max(1));
    let n_props = 1 + rng.below(params.max_properties.max(1));

    // Signal pool the random structure draws fanins from.
    let mut pool: Vec<SignalId> = Vec::new();
    for k in 0..n_inputs {
        pool.push(n.add_input(&format!("in{k}")));
    }
    let mut regs = Vec::new();
    for k in 0..n_regs {
        let init = if params.allow_unknown_init && rng.chance(1, 8) {
            None
        } else {
            Some(rng.chance(1, 2))
        };
        let r = n.add_register(&format!("r{k}"), init);
        regs.push(r);
        pool.push(r);
    }
    if rng.chance(1, 4) {
        pool.push(n.add_const("", rng.chance(1, 2)));
    }
    const OPS: [GateOp; 9] = [
        GateOp::And,
        GateOp::Or,
        GateOp::Not,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Xnor,
        GateOp::Mux,
        GateOp::Buf,
    ];
    for k in 0..n_gates {
        let op = OPS[rng.below(OPS.len())];
        let arity = match op {
            GateOp::Not | GateOp::Buf => 1,
            GateOp::Mux => 3,
            _ => 2 + rng.below(2),
        };
        let fanins: Vec<SignalId> = (0..arity).map(|_| pool[rng.below(pool.len())]).collect();
        pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
    }
    for &r in &regs {
        n.set_register_next(r, pool[rng.below(pool.len())])
            .expect("nexts are assigned exactly once");
    }
    for k in 0..1 + rng.below(2) {
        n.add_output(format!("out{k}"), pool[rng.below(pool.len())]);
    }

    let mut properties = Vec::new();
    for k in 0..n_props {
        let watch = pool[rng.below(pool.len())];
        let value = rng.chance(1, 2);
        if rng.chance(1, 2) {
            // Sticky watchdog: latches once `watch == value` ever holds, so
            // the property is falsified at (minimal reach depth of the
            // condition) + 1, or proved if the condition is unreachable.
            let eq = if value {
                watch
            } else {
                n.add_gate(&format!("p{k}_eq"), GateOp::Not, &[watch])
            };
            let w = n.add_register(&format!("p{k}_w"), Some(false));
            let hold = n.add_gate(&format!("p{k}_hold"), GateOp::Or, &[w, eq]);
            n.set_register_next(w, hold)
                .expect("watchdog next assigned once");
            properties.push(Property::never_value(format!("p{k}_wd"), w, true));
        } else {
            // Direct property on an arbitrary signal: exercises depth-0
            // falsification and combinational targets.
            properties.push(Property::never_value(format!("p{k}"), watch, value));
        }
    }
    n.validate()
        .expect("generated designs are structurally valid");
    Design {
        netlist: n,
        properties,
        coverage_sets: Vec::new(),
    }
}

/// Projects `design` onto the sequential cone of influence of one property,
/// optionally freeing some registers into primary inputs.
///
/// Returns the reduced single-property design, or `None` if the property
/// index is out of range.
pub fn project_property(
    design: &Design,
    prop_index: usize,
    freed: &HashSet<SignalId>,
) -> Option<Design> {
    let property = design.properties.get(prop_index)?;
    let n = &design.netlist;
    // Sequential COI closure: through gate fanins always, and through
    // next-state functions only for registers that stay registers.
    let mut in_coi: HashSet<SignalId> = HashSet::new();
    let mut work = vec![property.signal];
    while let Some(s) = work.pop() {
        if !in_coi.insert(s) {
            continue;
        }
        match n.kind(s) {
            NetKind::Gate { fanins, .. } => work.extend(fanins.iter().copied()),
            NetKind::Register { .. } if !freed.contains(&s) => work.push(n.register_next(s)),
            _ => {}
        }
    }
    // Rebuild in original index order: gate fanins always precede the gate,
    // so they are mapped by the time the gate is copied.
    let mut out = Netlist::new(n.name());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    let mut coi_sorted: Vec<SignalId> = in_coi.iter().copied().collect();
    coi_sorted.sort_by_key(|s| s.index());
    for &s in &coi_sorted {
        let name = n.signal_name(s);
        let new = match n.kind(s) {
            NetKind::Input => out.add_input(name),
            NetKind::Const(v) => out.add_const(name, *v),
            NetKind::Register { init, .. } => {
                if freed.contains(&s) {
                    out.add_input(name)
                } else {
                    out.add_register(name, *init)
                }
            }
            NetKind::Gate { op, fanins } => {
                let mapped: Vec<SignalId> = fanins.iter().map(|f| map[f]).collect();
                out.add_gate(name, *op, &mapped)
            }
        };
        map.insert(s, new);
    }
    for &s in &coi_sorted {
        if matches!(n.kind(s), NetKind::Register { .. }) && !freed.contains(&s) {
            out.set_register_next(map[&s], map[&n.register_next(s)])
                .expect("projected nexts are assigned exactly once");
        }
    }
    out.validate().ok()?;
    let property =
        Property::never_value(property.name.clone(), map[&property.signal], property.value);
    Some(Design {
        netlist: out,
        properties: vec![property],
        coverage_sets: Vec::new(),
    })
}

/// Shrinks a disagreeing design while `still_failing` keeps returning true.
///
/// The result always contains exactly the one property `prop_index` refers
/// to. Every candidate handed to the predicate is a valid, self-contained
/// design, so the caller can re-run its engines (or dump the candidate as
/// an `.aag` repro) directly.
pub fn shrink_design(
    design: &Design,
    prop_index: usize,
    mut still_failing: impl FnMut(&Design) -> bool,
) -> Design {
    let no_free = HashSet::new();
    let full = project_property(design, prop_index, &no_free)
        .expect("the reported property projects onto its own COI");
    let mut best = full.clone();
    if !still_failing(&best) {
        // The disagreement does not survive even the identity projection
        // (e.g. it needs multiple properties): return the projection anyway
        // as the smallest faithful repro container.
        return best;
    }
    // Greedy register freeing to a fixpoint: each round tries every
    // remaining register once.
    loop {
        let mut improved = false;
        let regs: Vec<SignalId> = best.netlist.registers().to_vec();
        for r in regs {
            // Never free the watched signal itself.
            if best.properties[0].signal == r {
                continue;
            }
            let mut freed = HashSet::new();
            freed.insert(r);
            if let Some(candidate) = project_property(&best, 0, &freed) {
                if candidate.netlist.num_registers() < best.netlist.num_registers()
                    && still_failing(&candidate)
                {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = fuzz_design(42);
        let b = fuzz_design(42);
        assert_eq!(a.netlist.structural_hash(), b.netlist.structural_hash());
        assert_eq!(a.properties.len(), b.properties.len());
        let c = fuzz_design(43);
        assert_ne!(a.netlist.structural_hash(), c.netlist.structural_hash());
    }

    #[test]
    fn designs_validate_across_seeds() {
        for seed in 0..200 {
            let d = fuzz_design(seed);
            d.netlist.validate().expect("fuzzed designs validate");
            assert!(!d.properties.is_empty());
            assert!(d.netlist.num_registers() >= 2);
        }
    }

    #[test]
    fn projection_keeps_property_semantics_shape() {
        let d = fuzz_design(7);
        let p = project_property(&d, 0, &HashSet::new()).unwrap();
        assert_eq!(p.properties.len(), 1);
        assert!(p.netlist.num_signals() <= d.netlist.num_signals());
        p.netlist.validate().unwrap();
    }

    #[test]
    fn shrinking_reduces_registers_under_true_predicate() {
        let d = fuzz_design(11);
        let prop = d.properties.len() - 1;
        let shrunk = shrink_design(&d, prop, |_| true);
        assert_eq!(shrunk.properties.len(), 1);
        // A constantly-failing predicate lets the shrinker free everything
        // except a watched register.
        assert!(shrunk.netlist.num_registers() <= d.netlist.num_registers());
    }
}
