//! The integer-unit design (Table 2, coverage sets IU1–IU5).
//!
//! A cluster of interacting control state machines modeled after a
//! processor's integer pipeline (the paper used the Sun picoJava IU):
//!
//! * five 2-bit pipeline-stage FSMs (IDLE / BUSY / WAIT / FLUSH) chained in a
//!   ring, so all control registers sit in one strongly connected component
//!   — which is why every IU coverage set has the same cone of influence, as
//!   the paper observed;
//! * a one-hot token ring gating stage advancement;
//! * a mode counter that *saturates* below the value that would load the
//!   flush-enable configuration chain, so the chain is stuck at zero and the
//!   FLUSH states are unreachable — but proving that requires pulling the
//!   (topologically distant) chain and mode registers into the abstraction;
//! * wide per-stage performance counters adjacent to the stage registers:
//!   semantically inert, but they sit at BFS distance one and soak up the
//!   BFS method's fixed register budget.
//!
//! Each coverage set has 10 signals (1,024 coverage states), matching the
//! paper's IU experiments.

use rfn_netlist::{CoverageSet, GateOp, Netlist, SignalId};

use crate::words::{
    coi_coupler, connect_word, eq_const, incrementer, mux_word, or_reduce, word_input,
    word_register,
};
use crate::Design;

/// Parameters of [`integer_unit`].
#[derive(Clone, Debug)]
pub struct IntegerUnitParams {
    /// Pipeline stages (each contributes a 2-bit FSM). At least 5 for the
    /// standard IU1–IU5 coverage sets.
    pub stages: usize,
    /// Performance counters per stage (BFS-ball pollution; more counters
    /// starve the BFS register budget).
    pub counters_per_stage: usize,
    /// Width of each performance counter. Wider counters blow up the BFS
    /// baseline's fixpoint diameter — the paper's "unpredictable BFS time".
    pub counter_width: usize,
    /// Width of the per-stage datapath latches (COI filler).
    pub data_width: usize,
}

impl Default for IntegerUnitParams {
    fn default() -> Self {
        IntegerUnitParams {
            stages: 5,
            counters_per_stage: 2,
            counter_width: 5,
            data_width: 16,
        }
    }
}

/// Generates the integer unit with coverage sets IU1–IU5.
///
/// # Panics
///
/// Panics if `stages < 5`.
pub fn integer_unit(params: &IntegerUnitParams) -> Design {
    assert!(params.stages >= 5, "the IU needs at least 5 stages");
    let mut n = Netlist::new("integer_unit");
    let adv = n.add_input("adv");
    let ack = n.add_input("ack");
    let flush_req = n.add_input("flush_req");
    let load_cfg = n.add_input("load_cfg");

    // Junk performance counters FIRST so they get low signal ids and are
    // discovered before anything else inside the BFS ball.
    let counters: Vec<Vec<Vec<SignalId>>> = (0..params.stages)
        .map(|k| {
            (0..params.counters_per_stage)
                .map(|c| word_register(&mut n, &format!("perf{k}_{c}"), params.counter_width, 0))
                .collect()
        })
        .collect();

    // Stage FSM state registers (2 bits each: 00 IDLE, 01 BUSY, 10 WAIT,
    // 11 FLUSH).
    let stage_bits: Vec<[SignalId; 2]> = (0..params.stages)
        .map(|k| {
            [
                n.add_register(&format!("st{k}_b0"), Some(false)),
                n.add_register(&format!("st{k}_b1"), Some(false)),
            ]
        })
        .collect();

    // One-hot token ring, advanced when any stage is busy.
    let token: Vec<SignalId> = (0..params.stages)
        .map(|k| n.add_register(&format!("tok{k}"), Some(k == 0)))
        .collect();

    // Mode counter: saturates at 5, so 6 and 7 are unreachable and
    // `mode == 7` (the cfg-chain load condition) never holds.
    let mode = word_register(&mut n, "mode", 3, 0);
    // Flush-enable configuration chain (stuck at zero in reality).
    let cfg0 = n.add_register("cfg0", Some(false));
    let cfg1 = n.add_register("cfg1", Some(false));
    let cfg2 = n.add_register("cfg2", Some(false));

    // --- combinational control ---
    let busy_bits: Vec<SignalId> = stage_bits
        .iter()
        .map(|&[b0, b1]| {
            let nb1 = n.add_gate("", GateOp::Not, &[b1]);
            n.add_gate("", GateOp::And, &[b0, nb1]) // state == 01
        })
        .collect();
    let wait_bits: Vec<SignalId> = stage_bits
        .iter()
        .map(|&[b0, b1]| {
            let nb0 = n.add_gate("", GateOp::Not, &[b0]);
            n.add_gate("", GateOp::And, &[nb0, b1]) // state == 10
        })
        .collect();
    let any_busy = or_reduce(&mut n, &busy_bits);

    let mode_is_7 = eq_const(&mut n, &mode, 7);
    let cfg0_load = n.add_gate("cfg0_load", GateOp::And, &[load_cfg, mode_is_7]);
    let cfg0_next = n.add_gate("cfg0_next", GateOp::Or, &[cfg0, cfg0_load]);
    n.set_register_next(cfg0, cfg0_next).expect("cfg0 connects");
    n.set_register_next(cfg1, cfg0).expect("cfg1 connects");
    n.set_register_next(cfg2, cfg1).expect("cfg2 connects");
    let flush_en = cfg2;

    // Mode: increments when stage 0 goes busy, saturating at 5.
    let mode_lt_5 = {
        let is5 = eq_const(&mut n, &mode, 5);
        n.add_gate("mode_lt5", GateOp::Not, &[is5])
    };
    let mode_tick = n.add_gate("mode_tick", GateOp::And, &[busy_bits[0], mode_lt_5]);
    let mode_next = incrementer(&mut n, &mode, mode_tick);
    connect_word(&mut n, &mode, &mode_next);

    // Token ring: rotate when any stage is busy.
    for k in 0..params.stages {
        let prev = token[(k + params.stages - 1) % params.stages];
        let rot = n.add_gate("", GateOp::Mux, &[any_busy, token[k], prev]);
        n.set_register_next(token[k], rot).expect("token connects");
    }

    // Stage transitions.
    for k in 0..params.stages {
        let [b0, b1] = stage_bits[k];
        let go = if k == 0 {
            n.add_gate("", GateOp::And, &[adv, token[0]])
        } else {
            // Advance when the previous stage waits and we hold the token.
            n.add_gate("", GateOp::And, &[wait_bits[k - 1], token[k]])
        };
        let flush = n.add_gate("", GateOp::And, &[flush_req, flush_en]);
        // Next-state logic per bit (see the state encoding above):
        //   IDLE --go--> BUSY ; BUSY --> WAIT ; WAIT --ack--> IDLE ;
        //   any --flush--> FLUSH ; FLUSH --> IDLE.
        let nb0 = n.add_gate("", GateOp::Not, &[b0]);
        let nb1 = n.add_gate("", GateOp::Not, &[b1]);
        let is_idle = n.add_gate("", GateOp::And, &[nb0, nb1]);
        let is_busy = busy_bits[k];
        let is_wait = wait_bits[k];
        let stay_wait = {
            let nack = n.add_gate("", GateOp::Not, &[ack]);
            n.add_gate("", GateOp::And, &[is_wait, nack])
        };
        let b0_n = {
            // BUSY next: from IDLE on go, or FLUSH bit 0 on flush.
            let t = n.add_gate("", GateOp::And, &[is_idle, go]);
            n.add_gate("", GateOp::Or, &[t, flush])
        };
        let b1_n = {
            // WAIT next: from BUSY, or staying in WAIT, or FLUSH bit 1.
            let t = n.add_gate("", GateOp::Or, &[is_busy, stay_wait]);
            n.add_gate("", GateOp::Or, &[t, flush])
        };
        // Couple the junk counters into the stage's fanin (inert, but it
        // puts them at BFS distance one from the coverage signals).
        let mut b0_c = b0_n;
        let mut b1_c = b1_n;
        for ctr in &counters[k] {
            let msb = ctr[params.counter_width - 1];
            b0_c = coi_coupler(&mut n, b0_c, msb);
            b1_c = coi_coupler(&mut n, b1_c, msb);
        }
        n.set_register_next(b0, b0_c).expect("stage bit connects");
        n.set_register_next(b1, b1_c).expect("stage bit connects");
        // The counters themselves count busy / wait cycles.
        for (c, ctr) in counters[k].iter().enumerate() {
            let tick = if c % 2 == 0 { is_busy } else { is_wait };
            let cnt_next = incrementer(&mut n, ctr, tick);
            connect_word(&mut n, ctr, &cnt_next);
        }
    }

    // Datapath filler latches, shifting while stage 0 is busy.
    let data_in = word_input(&mut n, "data_in", params.data_width);
    let mut prev = data_in;
    for (k, &busy) in busy_bits.iter().enumerate() {
        let lat = word_register(&mut n, &format!("dat{k}"), params.data_width, 0);
        let upd = mux_word(&mut n, busy, &lat, &prev);
        connect_word(&mut n, &lat, &upd);
        prev = lat;
    }

    n.add_output("any_busy", any_busy);
    n.validate().expect("generated IU validates");

    // Coverage sets: 10 signals each, drawn from the control registers.
    let all_stage: Vec<SignalId> = stage_bits.iter().flat_map(|b| b.iter().copied()).collect();
    let coverage_sets = vec![
        CoverageSet::new("IU1", all_stage.clone()),
        CoverageSet::new(
            "IU2",
            all_stage[..8]
                .iter()
                .copied()
                .chain([mode[0], mode[1]])
                .collect::<Vec<_>>(),
        ),
        CoverageSet::new(
            "IU3",
            all_stage[..6]
                .iter()
                .copied()
                .chain(token.iter().copied().take(4))
                .collect::<Vec<_>>(),
        ),
        CoverageSet::new(
            "IU4",
            all_stage[2..8]
                .iter()
                .copied()
                .chain(token.iter().copied().take(2))
                .chain([mode[0], mode[2]])
                .collect::<Vec<_>>(),
        ),
        CoverageSet::new(
            "IU5",
            all_stage[4..]
                .iter()
                .copied()
                .chain(token.iter().copied().skip(1).take(3))
                .chain([cfg2])
                .collect::<Vec<_>>(),
        ),
    ];
    for set in &coverage_sets {
        assert_eq!(set.signals.len(), 10, "{} must have 10 signals", set.name);
    }

    Design {
        netlist: n,
        properties: Vec::new(),
        coverage_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Coi, Cube};
    use rfn_sim::{Simulator, Tv};

    #[test]
    fn coverage_sets_have_1024_states_and_shared_coi() {
        let d = integer_unit(&IntegerUnitParams::default());
        assert_eq!(d.coverage_sets.len(), 5);
        let cois: Vec<usize> = d
            .coverage_sets
            .iter()
            .map(|set| Coi::of(&d.netlist, set.signals.iter().copied()).num_registers())
            .collect();
        for set in &d.coverage_sets {
            assert_eq!(set.num_states(), 1024);
        }
        // All five sets live in one SCC, so the COIs coincide (the paper's
        // "little bit surprised" observation).
        assert!(
            cois.windows(2).all(|w| w[0] == w[1]),
            "COI sizes differ: {cois:?}"
        );
    }

    #[test]
    fn flush_states_never_occur_in_simulation() {
        let d = integer_unit(&IntegerUnitParams {
            stages: 5,
            counters_per_stage: 1,
            counter_width: 4,
            data_width: 4,
        });
        let n = &d.netlist;
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut state = 0xabcdefu64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cube: Cube = n
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (state >> (k % 59)) & 1 == 1))
                .collect();
            sim.step(&cube);
            for k in 0..5 {
                let b0 = n.find(&format!("st{k}_b0")).unwrap();
                let b1 = n.find(&format!("st{k}_b1")).unwrap();
                assert!(
                    !(sim.value(b0) == Tv::One && sim.value(b1) == Tv::One),
                    "stage {k} entered FLUSH"
                );
            }
        }
    }

    #[test]
    fn stages_do_advance() {
        let d = integer_unit(&IntegerUnitParams {
            stages: 5,
            counters_per_stage: 1,
            counter_width: 4,
            data_width: 4,
        });
        let n = &d.netlist;
        let adv = n.find("adv").unwrap();
        let b0 = n.find("st0_b0").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut cube: Cube = n.inputs().iter().map(|&i| (i, false)).collect();
        cube.remove(adv);
        cube.insert(adv, true).unwrap();
        sim.step(&cube);
        assert_eq!(sim.value(b0), Tv::One, "stage 0 must go BUSY");
    }

    #[test]
    fn mode_saturates_below_seven() {
        let d = integer_unit(&IntegerUnitParams {
            stages: 5,
            counters_per_stage: 1,
            counter_width: 4,
            data_width: 4,
        });
        let n = &d.netlist;
        let adv = n.find("adv").unwrap();
        let ack = n.find("ack").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        for _ in 0..100 {
            let mut cube: Cube = n.inputs().iter().map(|&i| (i, false)).collect();
            cube.remove(adv);
            cube.remove(ack);
            cube.insert(adv, true).unwrap();
            cube.insert(ack, true).unwrap();
            sim.step(&cube);
        }
        let mode_val: u64 = (0..3)
            .map(|k| {
                let bit = n.find(&format!("mode[{k}]")).unwrap();
                u64::from(sim.value(bit) == Tv::One) << k
            })
            .sum();
        assert!(mode_val <= 5, "mode overflowed saturation: {mode_val}");
        let cfg2 = n.find("cfg2").unwrap();
        assert_eq!(sim.value(cfg2), Tv::Zero, "cfg chain must stay low");
    }

    #[test]
    fn junk_counters_have_low_signal_ids() {
        let d = integer_unit(&IntegerUnitParams::default());
        let n = &d.netlist;
        let perf = n.find("perf0_0[0]").unwrap();
        let st = n.find("st0_b0").unwrap();
        assert!(perf < st, "junk counters must be created before stage regs");
    }
}
