//! Synthetic benchmark designs for the RFN reproduction.
//!
//! The paper evaluates RFN on proprietary real-world designs: a processor
//! module (≈5,000 registers, ≈111,000 gates in the property COIs), a FIFO
//! controller (135 registers), the Integer Unit of the Sun picoJava
//! microprocessor and a USB bus controller. None of those netlists are
//! available, so this crate generates *structurally equivalent* synthetic
//! designs (see `DESIGN.md` at the repository root for the substitution
//! argument):
//!
//! * [`processor_module`] — a small arbiter/pipeline control core carrying
//!   the `mutex` (true) and `error_flag` (false, ≈30-cycle violation)
//!   properties, surrounded by a large register-file/datapath periphery that
//!   inflates the cone of influence to the paper's size,
//! * [`fifo_controller`] — pointers, counter and status flags with the
//!   `push_hf`, `push_af` and `push_full` consistency properties (all true),
//! * [`integer_unit`] — a cluster of interacting control FSMs with the
//!   IU1–IU5 coverage-signal sets (10 signals ⇒ 1,024 coverage states each),
//! * [`usb_controller`] — endpoint/token FSMs with the USB1 (6 signals) and
//!   USB2 (21 signals) coverage sets,
//! * [`small`] — tiny pedagogical designs used in documentation and tests.
//!
//! All generators are deterministic: the same parameters always produce the
//! same netlist.
//!
//! # Example
//!
//! ```
//! use rfn_designs::fifo_controller;
//!
//! let design = fifo_controller(&Default::default());
//! assert_eq!(design.properties.len(), 3);
//! assert!(design.netlist.num_registers() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fifo;
pub mod fuzz;
mod integer_unit;
mod processor;
pub mod small;
mod usb;
pub mod words;

pub use fifo::{fifo_controller, FifoParams};
pub use fuzz::{fuzz_design, fuzz_design_with, project_property, shrink_design, FuzzParams};
pub use integer_unit::{integer_unit, IntegerUnitParams};
pub use processor::{processor_module, ProcessorParams};
pub use usb::{usb_controller, UsbParams};

use rfn_netlist::{CoverageSet, Netlist, Property};

/// A generated benchmark design: the netlist plus the properties and
/// coverage sets the paper's experiments exercise on it.
#[derive(Clone, Debug)]
pub struct Design {
    /// The gate-level design.
    pub netlist: Netlist,
    /// Unreachability properties (Table 1 experiments).
    pub properties: Vec<Property>,
    /// Coverage-signal sets (Table 2 experiments).
    pub coverage_sets: Vec<CoverageSet>,
}

impl Design {
    /// Looks a property up by name.
    pub fn property(&self, name: &str) -> Option<&Property> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Looks a coverage set up by name.
    pub fn coverage_set(&self, name: &str) -> Option<&CoverageSet> {
        self.coverage_sets.iter().find(|c| c.name == name)
    }
}
