//! The processor module design (Table 1, properties `mutex` and
//! `error_flag`).
//!
//! Structure mirrors the paper's experiment: a small control core carries the
//! properties —
//!
//! * **mutex** (true): a two-requester arbiter with request queues, a
//!   priority toggle and a watchdog that fires on a double grant or on a
//!   grant without a pending valid request;
//! * **error_flag** (false): a stall-watchdog "specification bug" — a
//!   saturating counter of consecutive stall cycles raises the error flag
//!   once a threshold of consecutive stalls is reached after the pipeline
//!   was activated, giving a ≈30-cycle shortest violation;
//!
//! — while a large datapath periphery (register file, instruction queue,
//! pipeline latches, store buffer, cache array, multiplier units) inflates
//! the properties' cones of influence to ≈5,000 registers and ≈10⁵ gates.
//! The periphery is tied into the watchdog cones through the redundant-mux
//! coupler ([`crate::words::coi_coupler`]), the kind of structure logic
//! synthesis leaves behind; it never affects control behavior.

use rfn_netlist::{GateOp, Netlist, Property, SignalId};

use crate::words::{
    adder, coi_coupler, connect_word, eq_const, incrementer, mux_word, or_reduce, watchdog,
    word_input, word_register, xor_reduce, Word,
};
use crate::Design;

/// Parameters of [`processor_module`].
#[derive(Clone, Debug)]
pub struct ProcessorParams {
    /// Datapath word width.
    pub width: usize,
    /// Register-file words.
    pub regfile_words: usize,
    /// Store-buffer entries.
    pub store_entries: usize,
    /// Cache-array lines.
    pub cache_lines: usize,
    /// Pipeline operand/result stages.
    pub pipe_stages: usize,
    /// Multiplier units (each is a `width/2 × width/2` array multiplier —
    /// the main gate-count driver).
    pub multipliers: usize,
    /// Consecutive stall cycles before the (buggy) error flag rises.
    pub stall_threshold: u64,
}

impl Default for ProcessorParams {
    fn default() -> Self {
        // Tuned so the property COIs land near the paper's ≈4,980 registers
        // and ≈111,000 gates.
        ProcessorParams {
            width: 64,
            regfile_words: 32,
            store_entries: 8,
            cache_lines: 19,
            pipe_stages: 3,
            multipliers: 8,
            stall_threshold: 27,
        }
    }
}

/// Generates the processor module with the `mutex` (true) and `error_flag`
/// (false) properties.
pub fn processor_module(params: &ProcessorParams) -> Design {
    let mut n = Netlist::new("processor_module");
    let w = params.width;

    // ---------------- control core: arbiter (mutex) ----------------
    let req0 = n.add_input("req0");
    let req1 = n.add_input("req1");
    let done0 = n.add_input("done0");
    let done1 = n.add_input("done1");

    // Two 2-bit request-queue occupancy counters.
    let q0 = word_register(&mut n, "q0", 2, 0);
    let q1 = word_register(&mut n, "q1", 2, 0);
    let vld0 = or_reduce(&mut n, &q0);
    let vld1 = or_reduce(&mut n, &q1);
    let q0_full = eq_const(&mut n, &q0, 3);
    let q1_full = eq_const(&mut n, &q1, 3);
    let nq0_full = n.add_gate("nq0_full", GateOp::Not, &[q0_full]);
    let nq1_full = n.add_gate("nq1_full", GateOp::Not, &[q1_full]);
    let enq0 = n.add_gate("enq0", GateOp::And, &[req0, nq0_full]);
    let enq1 = n.add_gate("enq1", GateOp::And, &[req1, nq1_full]);
    let deq0 = n.add_gate("deq0", GateOp::And, &[done0, vld0]);
    let deq1 = n.add_gate("deq1", GateOp::And, &[done1, vld1]);
    let q0_inc = incrementer(&mut n, &q0, enq0);
    let q0_next = crate::words::decrementer(&mut n, &q0_inc, deq0);
    connect_word(&mut n, &q0, &q0_next);
    let q1_inc = incrementer(&mut n, &q1, enq1);
    let q1_next = crate::words::decrementer(&mut n, &q1_inc, deq1);
    connect_word(&mut n, &q1, &q1_next);

    // Priority toggle and grants: by construction at most one grant rises.
    let prio = n.add_register("prio", Some(false));
    let nprio = n.add_gate("nprio", GateOp::Not, &[prio]);
    n.set_register_next(prio, nprio).expect("prio connects");
    let nvld1 = n.add_gate("nvld1", GateOp::Not, &[vld1]);
    let nvld0 = n.add_gate("nvld0", GateOp::Not, &[vld0]);
    let g0_sel = n.add_gate("g0_sel", GateOp::Or, &[prio, nvld1]);
    let g1_sel = n.add_gate("g1_sel", GateOp::Or, &[nprio, nvld0]);
    // g0' and g1' cannot both be 1: their conjunction reduces to
    // vld0 ∧ vld1 ∧ prio ∧ ¬prio when both valids hold.
    let g1_sel_strict = n.add_gate("g1_sel_strict", GateOp::And, &[g1_sel, nprio]);
    let g0_next = n.add_gate("g0_next", GateOp::And, &[vld0, g0_sel]);
    let g1_next_pre = n.add_gate("g1_next_pre", GateOp::And, &[vld1, g1_sel_strict]);
    let grant0 = n.add_register("grant0", Some(false));
    let grant1 = n.add_register("grant1", Some(false));
    n.set_register_next(grant0, g0_next)
        .expect("grant0 connects");
    n.set_register_next(grant1, g1_next_pre)
        .expect("grant1 connects");
    // Delayed valid shadows: a grant must follow a valid request.
    let vld0_d = n.add_register("vld0_d", Some(false));
    let vld1_d = n.add_register("vld1_d", Some(false));
    n.set_register_next(vld0_d, vld0).expect("vld0_d connects");
    n.set_register_next(vld1_d, vld1).expect("vld1_d connects");

    let both = n.add_gate("both_grants", GateOp::And, &[grant0, grant1]);
    let nv0d = n.add_gate("nv0d", GateOp::Not, &[vld0_d]);
    let nv1d = n.add_gate("nv1d", GateOp::Not, &[vld1_d]);
    let orphan0 = n.add_gate("orphan0", GateOp::And, &[grant0, nv0d]);
    let orphan1 = n.add_gate("orphan1", GateOp::And, &[grant1, nv1d]);
    let mutex_fire_or = n.add_gate("", GateOp::Or, &[both, orphan0]);
    let mutex_fire = n.add_gate("mutex_fire", GateOp::Or, &[mutex_fire_or, orphan1]);

    // ---------------- control core: stall watchdog (error_flag) -----------
    let start = n.add_input("start");
    let in_stall = n.add_input("in_stall");
    // Two-stage activation sequence before the pipeline is live.
    let boot = n.add_register("boot", Some(false));
    let booted = n.add_gate("booted", GateOp::Or, &[boot, start]);
    n.set_register_next(boot, booted).expect("boot connects");
    let active = n.add_register("active", Some(false));
    n.set_register_next(active, boot).expect("active connects");
    let stall = n.add_gate("stall", GateOp::And, &[in_stall, active]);
    // Saturating counter of consecutive stall cycles. THE BUG: the spec says
    // a hung pipeline must be re-started by flushing, but this counter raises
    // `error_flag` permanently once `stall_threshold` consecutive stalls
    // accumulate.
    let sc = word_register(&mut n, "stall_cnt", 5, 0);
    let sc_inc = incrementer(&mut n, &sc, stall);
    let zero_w: Word = (0..5).map(|_| n.add_const("", false)).collect();
    let nstall = n.add_gate("nstall", GateOp::Not, &[stall]);
    let sc_next = mux_word(&mut n, nstall, &sc_inc, &zero_w);
    connect_word(&mut n, &sc, &sc_next);
    let err_real = eq_const(&mut n, &sc, params.stall_threshold);
    // Decoy error path: a warm-up stall counter that only runs during the
    // short boot window, so it can never reach the threshold. Structurally
    // it looks just as easy as the real path -- the garden-path shape that
    // makes unguided sequential ATPG thrash and makes trace guidance
    // worthwhile (Section 2.3 of the paper).
    let wcnt = word_register(&mut n, "warmup_cnt", 3, 0);
    let warm_open = {
        let lt6 = {
            let ge6 = crate::words::ge_const(&mut n, &wcnt, 6);
            n.add_gate("", GateOp::Not, &[ge6])
        };
        n.add_gate("warm_open", GateOp::And, &[boot, lt6])
    };
    let wcnt_next = incrementer(&mut n, &wcnt, warm_open);
    connect_word(&mut n, &wcnt, &wcnt_next);
    let alt = word_register(&mut n, "alt_cnt", 5, 0);
    let alt_tick = n.add_gate("alt_tick", GateOp::And, &[in_stall, warm_open]);
    let alt_next = incrementer(&mut n, &alt, alt_tick);
    connect_word(&mut n, &alt, &alt_next);
    let err_decoy = eq_const(&mut n, &alt, params.stall_threshold);
    // Decoy first: tie-broken backtrace walks into it.
    let err_fire = n.add_gate("err_fire", GateOp::Or, &[err_decoy, err_real]);

    // ---------------- datapath periphery ----------------
    let alu_a = word_input(&mut n, "alu_a", w);
    let wr_addr = word_input(&mut n, "wr_addr", 5);
    let wr_en = n.add_input("wr_en");

    // Instruction queue: 4 x 32, shifting when not stalled.
    let mut iq_last: Option<Word> = None;
    let iq_in = word_input(&mut n, "iq_in", 32);
    let mut prev = iq_in;
    for e in 0..4 {
        let entry = word_register(&mut n, &format!("iq{e}"), 32, 0);
        let held = mux_word(&mut n, nstall, &entry, &prev);
        connect_word(&mut n, &entry, &held);
        prev = entry.clone();
        iq_last = Some(entry);
    }
    let iq_last = iq_last.expect("at least one IQ entry");

    // Register file with one write port.
    let mut regfile: Vec<Word> = Vec::new();
    {
        for word_idx in 0..params.regfile_words {
            let sel = eq_const(&mut n, &wr_addr, word_idx as u64);
            let we = n.add_gate("", GateOp::And, &[sel, wr_en]);
            let rf = word_register(&mut n, &format!("rf{word_idx}"), w, 0);
            let upd = mux_word(&mut n, we, &rf, &alu_a);
            connect_word(&mut n, &rf, &upd);
            regfile.push(rf);
        }
    }

    // Pipeline operand/result latches fed by regfile word 0 and the ALU bus.
    let mut stage_in = regfile[0].clone();
    let mut pipe_out = stage_in.clone();
    for s in 0..params.pipe_stages {
        let op_a = word_register(&mut n, &format!("pa{s}"), w, 0);
        let op_b = word_register(&mut n, &format!("pb{s}"), w, 0);
        let res = word_register(&mut n, &format!("pr{s}"), w, 0);
        let hold_a = mux_word(&mut n, nstall, &op_a, &stage_in);
        let hold_b = mux_word(&mut n, nstall, &op_b, &alu_a);
        connect_word(&mut n, &op_a, &hold_a);
        connect_word(&mut n, &op_b, &hold_b);
        let sum = adder(&mut n, &op_a, &op_b);
        let hold_r = mux_word(&mut n, nstall, &res, &sum);
        connect_word(&mut n, &res, &hold_r);
        stage_in = res.clone();
        pipe_out = res;
    }

    // Multiplier units: (w/2) x (w/2) array multipliers — the gate-count
    // driver. Each takes the pipe output halves and accumulates.
    let half = w / 2;
    let mut mult_outs: Vec<SignalId> = Vec::new();
    for m in 0..params.multipliers {
        let a: Word = pipe_out[..half].to_vec();
        let b: Word = pipe_out[half..].to_vec();
        // Partial products, summed with ripple adders into 2*half bits.
        let mut acc: Word = (0..w).map(|_| n.add_const("", false)).collect();
        for (i, &bi) in b.iter().enumerate() {
            let pp: Word = (0..w)
                .map(|j| {
                    if j >= i && j - i < half {
                        n.add_gate("", GateOp::And, &[a[j - i], bi])
                    } else {
                        n.add_const("", false)
                    }
                })
                .collect();
            acc = adder(&mut n, &acc, &pp);
        }
        let macc = word_register(&mut n, &format!("mac{m}"), w, 0);
        let macc_next = adder(&mut n, &macc, &acc);
        connect_word(&mut n, &macc, &macc_next);
        mult_outs.push(xor_reduce(&mut n, &macc));
    }

    // Store buffer and cache array shifting the pipe output through.
    let mut sb_prev = pipe_out.clone();
    for e in 0..params.store_entries {
        let sb = word_register(&mut n, &format!("sb{e}"), w, 0);
        let upd = mux_word(&mut n, wr_en, &sb, &sb_prev);
        connect_word(&mut n, &sb, &upd);
        sb_prev = sb;
    }
    let mut cl_prev = sb_prev.clone();
    for e in 0..params.cache_lines {
        let cl = word_register(&mut n, &format!("cl{e}"), w, 0);
        let upd = mux_word(&mut n, grant0, &cl, &cl_prev);
        connect_word(&mut n, &cl, &upd);
        cl_prev = cl;
    }

    // Datapath checksum: funnels the whole periphery into one signal.
    let mut checksum_bits: Vec<SignalId> = Vec::new();
    checksum_bits.push(xor_reduce(&mut n, &cl_prev));
    checksum_bits.push(xor_reduce(&mut n, &iq_last));
    checksum_bits.extend(mult_outs);
    for rf in &regfile {
        checksum_bits.push(xor_reduce(&mut n, rf));
    }
    let checksum = xor_reduce(&mut n, &checksum_bits);

    // Watchdogs, with the checksum coupled into their cones (COI inflation;
    // semantically transparent).
    let mutex_fire_c = coi_coupler(&mut n, mutex_fire, checksum);
    let err_fire_c = coi_coupler(&mut n, err_fire, checksum);
    let w_mutex = watchdog(&mut n, "w_mutex", mutex_fire_c);
    let w_error = watchdog(&mut n, "error_flag", err_fire_c);

    n.add_output("grant0", grant0);
    n.add_output("grant1", grant1);
    n.add_output("error_flag", w_error);
    n.validate().expect("generated processor validates");

    let properties = vec![
        Property::never(&n, "mutex", w_mutex),
        Property::never(&n, "error_flag", w_error),
    ];
    Design {
        netlist: n,
        properties,
        coverage_sets: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Coi, Cube};
    use rfn_sim::{Simulator, Tv};

    /// Small parameters for fast tests.
    fn small() -> ProcessorParams {
        ProcessorParams {
            width: 8,
            regfile_words: 4,
            store_entries: 2,
            cache_lines: 2,
            pipe_stages: 2,
            multipliers: 1,
            stall_threshold: 5,
        }
    }

    #[test]
    fn full_size_matches_paper_scale() {
        let d = processor_module(&ProcessorParams::default());
        let regs = d.netlist.num_registers();
        assert!(
            (4_700..=5_300).contains(&regs),
            "expected ~5,000 registers, got {regs}"
        );
        let coi = Coi::of(&d.netlist, [d.property("mutex").unwrap().signal]);
        assert!(
            coi.num_registers() >= regs - 50,
            "mutex COI too small: {}",
            coi.num_registers()
        );
        assert!(
            (80_000..=150_000).contains(&coi.num_gates()),
            "expected ~111k gates in the COI, got {}",
            coi.num_gates()
        );
    }

    #[test]
    fn mutex_holds_under_random_simulation() {
        let d = processor_module(&small());
        let n = &d.netlist;
        let w = d.property("mutex").unwrap().signal;
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut state = 0xdeadbeefu64;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cube: Cube = n
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (state >> (k % 61)) & 1 == 1))
                .collect();
            sim.step(&cube);
            assert_eq!(sim.value(w), Tv::Zero, "mutex watchdog fired");
        }
    }

    #[test]
    fn error_flag_fires_after_consecutive_stalls() {
        let d = processor_module(&small());
        let n = &d.netlist;
        let err = d.property("error_flag").unwrap().signal;
        let start = n.find("start").unwrap();
        let in_stall = n.find("in_stall").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let all_low =
            |n: &rfn_netlist::Netlist| -> Cube { n.inputs().iter().map(|&i| (i, false)).collect() };
        // Boot sequence.
        let mut cube = all_low(n);
        cube.remove(start);
        cube.insert(start, true).unwrap();
        sim.step(&cube);
        sim.step(&all_low(n)); // boot -> active
                               // Hold the stall for threshold + 1 cycles.
        for _ in 0..small().stall_threshold + 1 {
            assert_eq!(sim.value(err), Tv::Zero, "fired too early");
            let mut c = all_low(n);
            c.remove(in_stall);
            c.insert(in_stall, true).unwrap();
            sim.step(&c);
        }
        // One more latch cycle for the watchdog.
        sim.step(&all_low(n));
        assert_eq!(sim.value(err), Tv::One, "error flag must fire");
    }

    #[test]
    fn error_flag_resets_on_interrupted_stall() {
        let d = processor_module(&small());
        let n = &d.netlist;
        let err = d.property("error_flag").unwrap().signal;
        let start = n.find("start").unwrap();
        let in_stall = n.find("in_stall").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let all_low =
            |n: &rfn_netlist::Netlist| -> Cube { n.inputs().iter().map(|&i| (i, false)).collect() };
        let mut c = all_low(n);
        c.remove(start);
        c.insert(start, true).unwrap();
        sim.step(&c);
        sim.step(&all_low(n));
        // Stall threshold-1 cycles, break, stall again: never fires.
        for round in 0..3 {
            for _ in 0..small().stall_threshold - 1 {
                let mut c = all_low(n);
                c.remove(in_stall);
                c.insert(in_stall, true).unwrap();
                sim.step(&c);
                assert_eq!(sim.value(err), Tv::Zero, "round {round}");
            }
            sim.step(&all_low(n)); // interruption resets the counter
        }
        assert_eq!(sim.value(err), Tv::Zero);
    }

    #[test]
    fn grants_follow_requests() {
        let d = processor_module(&small());
        let n = &d.netlist;
        let req0 = n.find("req0").unwrap();
        let grant0 = n.find("grant0").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let all_low =
            |n: &rfn_netlist::Netlist| -> Cube { n.inputs().iter().map(|&i| (i, false)).collect() };
        let mut c = all_low(n);
        c.remove(req0);
        c.insert(req0, true).unwrap();
        sim.step(&c); // request enqueued
        sim.step(&all_low(n)); // grant issued (prio toggles; vld0 holds)
        let g_now = sim.value(grant0);
        sim.step(&all_low(n));
        let g_next = sim.value(grant0);
        assert!(
            g_now == Tv::One || g_next == Tv::One,
            "grant0 must rise within two cycles of a queued request"
        );
    }
}
