//! The FIFO controller design (Table 1, properties `psh_hf`, `psh_af`,
//! `psh_full`).
//!
//! A synchronous FIFO controller: head/tail pointers, an occupancy counter
//! and *registered* status flags (`empty`, `full`, `half_full`,
//! `almost_full`) computed one cycle ahead from the next counter value — the
//! classic structure whose flag/counter consistency designers want verified.
//! A data pipeline with a parity accumulator inflates the properties' cones
//! of influence to the paper's ≈135 registers without affecting the control
//! behavior.

use rfn_netlist::{GateOp, Netlist, Property};

use crate::words::{
    coi_coupler, connect_word, decrementer, eq_const, ge_const, incrementer, mux_word, watchdog,
    word_input, word_register, xor_reduce,
};
use crate::Design;

/// Parameters of [`fifo_controller`].
#[derive(Clone, Debug)]
pub struct FifoParams {
    /// FIFO depth (must be a power of two, at least 4).
    pub depth: usize,
    /// Data width of the (COI-inflating) data pipeline.
    pub data_width: usize,
    /// Number of data pipeline stages.
    pub data_stages: usize,
    /// Inject an off-by-one bug into the registered half-full flag: the flag
    /// is computed against `depth/2 - 1` while the specification checker
    /// uses `depth/2`, so `psh_hf` becomes falsifiable (a realistic flag
    /// bug used by tests and the falsification examples).
    pub inject_half_flag_bug: bool,
}

impl Default for FifoParams {
    fn default() -> Self {
        // Tuned so the property COIs come out near the paper's 135 registers.
        FifoParams {
            depth: 32,
            data_width: 16,
            data_stages: 6,
            inject_half_flag_bug: false,
        }
    }
}

/// Generates the FIFO controller design with the three Table 1 properties
/// (`psh_hf`, `psh_af`, `psh_full`), all of which are true.
///
/// # Panics
///
/// Panics if `depth` is not a power of two or is smaller than 4.
pub fn fifo_controller(params: &FifoParams) -> Design {
    assert!(
        params.depth.is_power_of_two() && params.depth >= 4,
        "depth must be a power of two >= 4"
    );
    let depth = params.depth as u64;
    let ptr_bits = params.depth.trailing_zeros() as usize;
    let cnt_bits = ptr_bits + 1;

    let mut n = Netlist::new("fifo_controller");
    let push = n.add_input("push");
    let pop = n.add_input("pop");
    let data_in = word_input(&mut n, "data_in", params.data_width);

    // Occupancy counter and pointers.
    let count = word_register(&mut n, "count", cnt_bits, 0);
    let head = word_register(&mut n, "head", ptr_bits, 0);
    let tail = word_register(&mut n, "tail", ptr_bits, 0);

    // Registered status flags, reset-consistent with count = 0.
    let full = n.add_register("full", Some(false));
    let empty = n.add_register("empty", Some(true));
    let half_full = n.add_register("half_full", Some(false));
    let almost_full = n.add_register("almost_full", Some(false));

    // Push/pop qualified by the *registered* flags (the real-world pattern
    // that makes flag consistency a meaningful property).
    let nfull = n.add_gate("nfull", GateOp::Not, &[full]);
    let nempty = n.add_gate("nempty", GateOp::Not, &[empty]);
    let can_push = n.add_gate("can_push", GateOp::And, &[push, nfull]);
    let can_pop = n.add_gate("can_pop", GateOp::And, &[pop, nempty]);

    // count' = count + can_push - can_pop.
    let inc = incrementer(&mut n, &count, can_push);
    let next_count = decrementer(&mut n, &inc, can_pop);
    connect_word(&mut n, &count, &next_count);
    // head' / tail' advance on pop / push.
    let next_head = incrementer(&mut n, &head, can_pop);
    let next_tail = incrementer(&mut n, &tail, can_push);
    connect_word(&mut n, &head, &next_head);
    connect_word(&mut n, &tail, &next_tail);

    // Flags precomputed from count'.
    let next_full = eq_const(&mut n, &next_count, depth);
    let next_empty = eq_const(&mut n, &next_count, 0);
    let half_threshold = if params.inject_half_flag_bug {
        depth / 2 - 1 // THE BUG: flag rises one entry early
    } else {
        depth / 2
    };
    let next_half = ge_const(&mut n, &next_count, half_threshold);
    let next_almost = ge_const(&mut n, &next_count, depth - 2);
    n.set_register_next(full, next_full).expect("full connects");
    n.set_register_next(empty, next_empty)
        .expect("empty connects");
    n.set_register_next(half_full, next_half)
        .expect("half connects");
    n.set_register_next(almost_full, next_almost)
        .expect("almost connects");

    // Data pipeline: stage0 captures on push, later stages shift — this is
    // the periphery that inflates the COI, as in the synthesized original.
    let mut stages = Vec::with_capacity(params.data_stages);
    let mut prev = data_in.clone();
    for s in 0..params.data_stages {
        let stage = word_register(&mut n, &format!("stage{s}"), params.data_width, 0);
        let held = mux_word(&mut n, can_push, &stage, &prev);
        connect_word(&mut n, &stage, &held);
        prev = stage.clone();
        stages.push(stage);
    }
    let parity = n.add_register("parity", Some(false));
    let last_parity = xor_reduce(&mut n, &stages[params.data_stages - 1]);
    let parity_next = n.add_gate("parity_next", GateOp::Xor, &[parity, last_parity]);
    n.set_register_next(parity, parity_next)
        .expect("parity connects");

    // Billing checksum: accumulates the product of the oldest stage and the
    // incoming word. Irrelevant to the control properties, but the
    // multiplier's next-state functions have exponentially large BDDs — this
    // is the datapath structure that puts the full-COI design beyond plain
    // symbolic model checking (Table 1's baseline failure), while RFN's
    // abstractions simply never include the checksum register.
    let chk = word_register(&mut n, "chk", params.data_width, 0);
    let product = {
        let a = &stages[params.data_stages - 1];
        let b = &data_in;
        let width = params.data_width;
        let mut acc: Vec<_> = (0..width).map(|_| n.add_const("", false)).collect();
        for (i, &bi) in b.iter().enumerate() {
            let pp: Vec<_> = (0..width)
                .map(|j| {
                    if j >= i {
                        n.add_gate("", GateOp::And, &[a[j - i], bi])
                    } else {
                        n.add_const("", false)
                    }
                })
                .collect();
            acc = crate::words::adder(&mut n, &acc, &pp);
        }
        acc
    };
    let chk_next = crate::words::adder(&mut n, &chk, &product);
    connect_word(&mut n, &chk, &chk_next);
    let chk_x = xor_reduce(&mut n, &chk);

    // Consistency checkers (combinational "specification shadows").
    let cur_half = ge_const(&mut n, &count, depth / 2);
    let cur_almost = ge_const(&mut n, &count, depth - 2);
    let cur_full = eq_const(&mut n, &count, depth);
    let hf_mismatch = n.add_gate("hf_mismatch", GateOp::Xor, &[half_full, cur_half]);
    let af_mismatch = n.add_gate("af_mismatch", GateOp::Xor, &[almost_full, cur_almost]);
    // push_full: a push is accepted while the counter already shows full —
    // an overflow (never happens: can_push is gated by the full flag, which
    // tracks the counter exactly).
    let overflow = n.add_gate("overflow", GateOp::And, &[can_push, cur_full]);

    // Route the checkers through a scrub signal folding in the data-path
    // parity, the pointers and the flags, so the whole controller sits in
    // each property's cone of influence (synthesis left a redundant bypass
    // mux here in the original; see words::coi_coupler).
    let head_x = xor_reduce(&mut n, &head);
    let tail_x = xor_reduce(&mut n, &tail);
    let scrub = {
        let bits = [
            parity,
            head_x,
            tail_x,
            chk_x,
            full,
            empty,
            half_full,
            almost_full,
        ];
        xor_reduce(&mut n, &bits)
    };
    let hf_fire = coi_coupler(&mut n, hf_mismatch, scrub);
    let af_fire = coi_coupler(&mut n, af_mismatch, scrub);
    let full_fire = coi_coupler(&mut n, overflow, scrub);

    let w_hf = watchdog(&mut n, "w_psh_hf", hf_fire);
    let w_af = watchdog(&mut n, "w_psh_af", af_fire);
    let w_full = watchdog(&mut n, "w_psh_full", full_fire);

    n.add_output("half_full", half_full);
    n.add_output("almost_full", almost_full);
    n.add_output("full", full);
    n.add_output("empty", empty);
    n.validate().expect("generated FIFO validates");

    let properties = vec![
        Property::never(&n, "psh_hf", w_hf),
        Property::never(&n, "psh_af", w_af),
        Property::never(&n, "psh_full", w_full),
    ];
    Design {
        netlist: n,
        properties,
        coverage_sets: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Coi, Cube};
    use rfn_sim::{Simulator, Tv};

    #[test]
    fn register_count_matches_paper_scale() {
        let d = fifo_controller(&FifoParams::default());
        let regs = d.netlist.num_registers();
        assert!(
            (120..=150).contains(&regs),
            "expected ~135 registers, got {regs}"
        );
        // The COI of each property covers (almost) the whole design.
        for p in &d.properties {
            let coi = Coi::of(&d.netlist, [p.signal]);
            assert!(
                coi.num_registers() >= regs - 10,
                "{}: COI {} of {regs}",
                p.name,
                coi.num_registers()
            );
        }
    }

    #[test]
    fn random_simulation_never_fires_watchdogs() {
        let d = fifo_controller(&FifoParams {
            depth: 8,
            data_width: 4,
            data_stages: 2,
            inject_half_flag_bug: false,
        });
        let n = &d.netlist;
        let push = n.find("push").unwrap();
        let pop = n.find("pop").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        // Drive all inputs (data too) deterministically pseudo-randomly.
        let mut state = 0x12345u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut cube = Cube::new();
            for (k, &i) in n.inputs().iter().enumerate() {
                cube.insert(i, (state >> (k % 60)) & 1 == 1).unwrap();
            }
            let _ = (push, pop);
            sim.step(&cube);
            for p in &d.properties {
                assert_eq!(
                    sim.value(p.signal),
                    Tv::Zero,
                    "{} fired in random simulation",
                    p.name
                );
            }
        }
    }

    #[test]
    fn flags_track_occupancy() {
        let d = fifo_controller(&FifoParams {
            depth: 8,
            data_width: 4,
            data_stages: 2,
            inject_half_flag_bug: false,
        });
        let n = &d.netlist;
        let push = n.find("push").unwrap();
        let pop = n.find("pop").unwrap();
        let full = n.find("full").unwrap();
        let empty = n.find("empty").unwrap();
        let half = n.find("half_full").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let drive = |sim: &mut Simulator, p: bool, q: bool| {
            let mut cube = Cube::new();
            for &i in n.inputs() {
                cube.insert(i, false).unwrap();
            }
            cube.remove(push);
            cube.remove(pop);
            cube.insert(push, p).unwrap();
            cube.insert(pop, q).unwrap();
            sim.step(&cube);
        };
        assert_eq!(sim.value(empty), Tv::One);
        // Push 8 items: full asserts, half asserts on the way.
        for k in 1..=8 {
            drive(&mut sim, true, false);
            if k >= 4 {
                assert_eq!(sim.value(half), Tv::One, "half at occupancy {k}");
            }
        }
        assert_eq!(sim.value(full), Tv::One);
        assert_eq!(sim.value(empty), Tv::Zero);
        // Extra pushes are ignored (no overflow).
        drive(&mut sim, true, false);
        assert_eq!(sim.value(full), Tv::One);
        // Drain.
        for _ in 0..8 {
            drive(&mut sim, false, true);
        }
        assert_eq!(sim.value(empty), Tv::One);
        assert_eq!(sim.value(full), Tv::Zero);
        assert_eq!(sim.value(half), Tv::Zero);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;
    use rfn_netlist::{parse_netlist, write_netlist};

    /// Generated designs survive the text format round trip.
    #[test]
    fn fifo_round_trips_through_text_format() {
        let d = fifo_controller(&FifoParams {
            depth: 8,
            data_width: 4,
            data_stages: 2,
            inject_half_flag_bug: false,
        });
        let text = write_netlist(&d.netlist);
        let back = parse_netlist(&text).expect("generated design reparses");
        assert_eq!(back.num_registers(), d.netlist.num_registers());
        assert_eq!(back.num_gates(), d.netlist.num_gates());
        // Behavioral spot check: both simulate identically for a few cycles.
        let mut a = rfn_sim::Simulator::new(&d.netlist).unwrap();
        let mut b = rfn_sim::Simulator::new(&back).unwrap();
        a.reset();
        b.reset();
        let push_a = d.netlist.find("push").unwrap();
        let push_b = back.find("push").unwrap();
        for _ in 0..10 {
            a.step(&[(push_a, true)].into_iter().collect());
            b.step(&[(push_b, true)].into_iter().collect());
        }
        let count_a = d.netlist.find("count[0]").unwrap();
        let count_b = back.find("count[0]").unwrap();
        assert_eq!(a.value(count_a), b.value(count_b));
    }

    /// The injected bug changes only the half flag's behavior.
    #[test]
    fn injected_bug_shifts_half_threshold() {
        let buggy = fifo_controller(&FifoParams {
            depth: 8,
            data_width: 4,
            data_stages: 2,
            inject_half_flag_bug: true,
        });
        let n = &buggy.netlist;
        let push = n.find("push").unwrap();
        let half = n.find("half_full").unwrap();
        let mut sim = rfn_sim::Simulator::new(n).unwrap();
        sim.reset();
        let drive = |sim: &mut rfn_sim::Simulator| {
            let mut cube: rfn_netlist::Cube = n.inputs().iter().map(|&i| (i, false)).collect();
            cube.remove(push);
            cube.insert(push, true).unwrap();
            sim.step(&cube);
        };
        // With the bug, half rises at occupancy 3 (threshold depth/2-1 = 3).
        for _ in 0..3 {
            drive(&mut sim);
        }
        assert_eq!(sim.value(half), rfn_sim::Tv::One, "buggy flag rises early");
    }
}
