//! Word-level construction helpers: multi-bit registers, adders, comparators
//! and muxes over a [`Netlist`].
//!
//! These are deliberately simple ripple-style structures — the goal is a
//! realistic *gate-level* netlist of the kind logic synthesis produces, not
//! an optimized datapath.

use rfn_netlist::{GateOp, Netlist, SignalId};

/// A little-endian word of signals (`bits[0]` is the LSB).
pub type Word = Vec<SignalId>;

/// Creates a register word with the given reset value.
pub fn word_register(n: &mut Netlist, name: &str, width: usize, init: u64) -> Word {
    (0..width)
        .map(|k| n.add_register(&format!("{name}[{k}]"), Some(init & (1 << k) != 0)))
        .collect()
}

/// Creates an input word.
pub fn word_input(n: &mut Netlist, name: &str, width: usize) -> Word {
    (0..width)
        .map(|k| n.add_input(&format!("{name}[{k}]")))
        .collect()
}

/// Connects each register of `regs` to the corresponding `next` signal.
///
/// # Panics
///
/// Panics if the words differ in width or a register is already connected.
pub fn connect_word(n: &mut Netlist, regs: &[SignalId], next: &[SignalId]) {
    assert_eq!(regs.len(), next.len(), "word width mismatch");
    for (&r, &nx) in regs.iter().zip(next) {
        n.set_register_next(r, nx)
            .expect("word register connects once");
    }
}

/// Ripple-carry increment-by-one of `word`, gated by `enable`: returns
/// `enable ? word + 1 : word` (wrapping).
pub fn incrementer(n: &mut Netlist, word: &[SignalId], enable: SignalId) -> Word {
    let mut carry = enable;
    let mut out = Vec::with_capacity(word.len());
    for &b in word {
        out.push(n.add_gate("", GateOp::Xor, &[b, carry]));
        carry = n.add_gate("", GateOp::And, &[b, carry]);
    }
    out
}

/// Ripple-borrow decrement-by-one of `word`, gated by `enable`.
pub fn decrementer(n: &mut Netlist, word: &[SignalId], enable: SignalId) -> Word {
    let mut borrow = enable;
    let mut out = Vec::with_capacity(word.len());
    for &b in word {
        out.push(n.add_gate("", GateOp::Xor, &[b, borrow]));
        let nb = n.add_gate("", GateOp::Not, &[b]);
        borrow = n.add_gate("", GateOp::And, &[nb, borrow]);
    }
    out
}

/// Ripple-carry adder `a + b` (same width, wrapping).
pub fn adder(n: &mut Netlist, a: &[SignalId], b: &[SignalId]) -> Word {
    assert_eq!(a.len(), b.len());
    let mut carry = n.add_const("", false);
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = n.add_gate("", GateOp::Xor, &[x, y]);
        out.push(n.add_gate("", GateOp::Xor, &[xy, carry]));
        let and_xy = n.add_gate("", GateOp::And, &[x, y]);
        let and_c = n.add_gate("", GateOp::And, &[xy, carry]);
        carry = n.add_gate("", GateOp::Or, &[and_xy, and_c]);
    }
    out
}

/// Equality of a word with a constant: one AND over per-bit (in)equalities.
pub fn eq_const(n: &mut Netlist, word: &[SignalId], value: u64) -> SignalId {
    let bits: Vec<SignalId> = word
        .iter()
        .enumerate()
        .map(|(k, &b)| {
            if value & (1 << k) != 0 {
                b
            } else {
                n.add_gate("", GateOp::Not, &[b])
            }
        })
        .collect();
    and_reduce(n, &bits)
}

/// Unsigned `word >= value` via a ripple comparison.
pub fn ge_const(n: &mut Netlist, word: &[SignalId], value: u64) -> SignalId {
    // LSB to MSB; `ge` always means "the suffix seen so far is >= the
    // constant's suffix". A higher bit then dominates the lower result.
    let mut ge = n.add_const("", true); // empty suffixes are equal
    for (k, &b) in word.iter().enumerate() {
        let cbit = value & (1 << k) != 0;
        ge = if cbit {
            // b == 0 here means strictly below regardless of lower bits;
            // b == 1 means equal here, so the lower bits decide.
            n.add_gate("", GateOp::And, &[b, ge])
        } else {
            // b == 1 means strictly above regardless of lower bits;
            // b == 0 means equal here, so the lower bits decide.
            n.add_gate("", GateOp::Or, &[b, ge])
        };
    }
    ge
}

/// Per-bit two-way mux: `sel ? b : a`.
pub fn mux_word(n: &mut Netlist, sel: SignalId, a: &[SignalId], b: &[SignalId]) -> Word {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| n.add_gate("", GateOp::Mux, &[sel, x, y]))
        .collect()
}

/// Balanced tree of 2-input gates reducing a word with `op` (the shape logic
/// synthesis produces; n-ary gates would deflate gate counts unrealistically).
pub fn tree_reduce(n: &mut Netlist, op: GateOp, word: &[SignalId]) -> SignalId {
    assert!(!word.is_empty(), "cannot reduce an empty word");
    let mut layer = word.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(match pair {
                [a, b] => n.add_gate("", op, &[*a, *b]),
                [a] => *a,
                _ => unreachable!(),
            });
        }
        layer = next;
    }
    layer[0]
}

/// XOR reduction of a word (balanced tree of 2-input gates).
pub fn xor_reduce(n: &mut Netlist, word: &[SignalId]) -> SignalId {
    tree_reduce(n, GateOp::Xor, word)
}

/// OR reduction of a word (balanced tree of 2-input gates).
pub fn or_reduce(n: &mut Netlist, word: &[SignalId]) -> SignalId {
    tree_reduce(n, GateOp::Or, word)
}

/// AND reduction of a word (balanced tree of 2-input gates).
pub fn and_reduce(n: &mut Netlist, word: &[SignalId]) -> SignalId {
    tree_reduce(n, GateOp::And, word)
}

/// A latched sticky watchdog: returns the watchdog register, which rises (and
/// stays high) the cycle after `fire` is asserted.
pub fn watchdog(n: &mut Netlist, name: &str, fire: SignalId) -> SignalId {
    let w = n.add_register(name, Some(false));
    let hold = n.add_gate("", GateOp::Or, &[w, fire]);
    n.set_register_next(w, hold)
        .expect("fresh watchdog register");
    w
}

/// Structural COI coupler: returns a signal semantically equal to `value`
/// whose fanin cone also contains `extra`. Logic synthesis routinely leaves
/// such redundant muxes behind; the generators use this to give properties
/// the paper's huge cones of influence without changing behavior. Because
/// both data inputs agree, 3-valued simulation never produces `X` from the
/// `extra` side.
pub fn coi_coupler(n: &mut Netlist, value: SignalId, extra: SignalId) -> SignalId {
    n.add_gate("", GateOp::Mux, &[extra, value, value])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::Cube;
    use rfn_sim::{Simulator, Tv};

    fn eval_word(sim: &Simulator, w: &[SignalId]) -> u64 {
        w.iter().enumerate().fold(0, |acc, (k, &b)| {
            acc | (u64::from(sim.value(b) == Tv::One) << k)
        })
    }

    #[test]
    fn incrementer_counts() {
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let w = word_register(&mut n, "c", 4, 0);
        let next = incrementer(&mut n, &w.clone(), en);
        connect_word(&mut n, &w, &next);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        for expect in 1..=17u64 {
            sim.step(&[(en, true)].into_iter().collect());
            assert_eq!(eval_word(&sim, &w), expect % 16);
        }
        // Disabled: holds.
        let v = eval_word(&sim, &w);
        sim.step(&[(en, false)].into_iter().collect());
        assert_eq!(eval_word(&sim, &w), v);
    }

    #[test]
    fn adder_adds() {
        let mut n = Netlist::new("t");
        let a = word_input(&mut n, "a", 5);
        let b = word_input(&mut n, "b", 5);
        let s = adder(&mut n, &a, &b);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for (x, y) in [(0u64, 0u64), (3, 4), (15, 18), (31, 1), (21, 21)] {
            let mut cube = Cube::new();
            for (k, &bit) in a.iter().enumerate() {
                cube.insert(bit, x & (1 << k) != 0).unwrap();
            }
            for (k, &bit) in b.iter().enumerate() {
                cube.insert(bit, y & (1 << k) != 0).unwrap();
            }
            sim.reset();
            sim.apply_cube(&cube);
            sim.step_comb();
            assert_eq!(eval_word(&sim, &s), (x + y) % 32, "{x}+{y}");
        }
    }

    #[test]
    fn comparators_match_arithmetic() {
        let mut n = Netlist::new("t");
        let a = word_input(&mut n, "a", 4);
        let eq7 = eq_const(&mut n, &a, 7);
        let ge5 = ge_const(&mut n, &a, 5);
        let ge0 = ge_const(&mut n, &a, 0);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..16u64 {
            let cube: Cube = a
                .iter()
                .enumerate()
                .map(|(k, &bit)| (bit, v & (1 << k) != 0))
                .collect();
            sim.reset();
            sim.apply_cube(&cube);
            sim.step_comb();
            assert_eq!(sim.value(eq7) == Tv::One, v == 7, "eq7({v})");
            assert_eq!(sim.value(ge5) == Tv::One, v >= 5, "ge5({v})");
            assert_eq!(sim.value(ge0), Tv::One, "ge0({v})");
        }
    }

    #[test]
    fn decrementer_decrements() {
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let w = word_register(&mut n, "c", 4, 9);
        let next = decrementer(&mut n, &w.clone(), en);
        connect_word(&mut n, &w, &next);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        for expect in (0..9u64).rev() {
            sim.step(&[(en, true)].into_iter().collect());
            assert_eq!(eval_word(&sim, &w), expect);
        }
        sim.step(&[(en, true)].into_iter().collect());
        assert_eq!(eval_word(&sim, &w), 15, "wraps");
    }

    #[test]
    fn mux_word_selects() {
        let mut n = Netlist::new("t");
        let sel = n.add_input("s");
        let a = word_input(&mut n, "a", 3);
        let b = word_input(&mut n, "b", 3);
        let m = mux_word(&mut n, sel, &a, &b);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut cube = Cube::new();
        for (k, &bit) in a.iter().enumerate() {
            cube.insert(bit, k == 0).unwrap(); // a = 001
        }
        for (k, &bit) in b.iter().enumerate() {
            cube.insert(bit, k == 2).unwrap(); // b = 100
        }
        cube.insert(sel, false).unwrap();
        sim.reset();
        sim.apply_cube(&cube);
        sim.step_comb();
        assert_eq!(eval_word(&sim, &m), 0b001);
        sim.set(sel, Tv::One);
        sim.step_comb();
        assert_eq!(eval_word(&sim, &m), 0b100);
    }

    #[test]
    fn coupler_is_transparent_even_under_x() {
        let mut n = Netlist::new("t");
        let v = n.add_input("v");
        let junk = n.add_input("junk");
        let c = coi_coupler(&mut n, v, junk);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        sim.set(v, Tv::One); // junk left at X
        sim.step_comb();
        assert_eq!(sim.value(c), Tv::One);
        sim.set(v, Tv::Zero);
        sim.step_comb();
        assert_eq!(sim.value(c), Tv::Zero);
    }

    #[test]
    fn watchdog_latches() {
        let mut n = Netlist::new("t");
        let fire = n.add_input("f");
        let w = watchdog(&mut n, "w", fire);
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        sim.step(&[(fire, false)].into_iter().collect());
        assert_eq!(sim.value(w), Tv::Zero);
        sim.step(&[(fire, true)].into_iter().collect());
        assert_eq!(sim.value(w), Tv::One);
        sim.step(&[(fire, false)].into_iter().collect());
        assert_eq!(sim.value(w), Tv::One, "sticky");
    }
}
