//! Small pedagogical designs used in documentation, examples and tests.

use rfn_netlist::{GateOp, Netlist, Property};

use crate::words::{connect_word, eq_const, ge_const, incrementer, watchdog, word_register};
use crate::Design;

/// A saturating counter with a watchdog on overflow (true property
/// `no_overflow`): the counter holds at its maximum, so it never wraps.
pub fn saturating_counter(bits: usize) -> Design {
    let mut n = Netlist::new("saturating_counter");
    let en = n.add_input("en");
    let c = word_register(&mut n, "c", bits, 0);
    let max = (1u64 << bits) - 1;
    let at_max = eq_const(&mut n, &c, max);
    let not_max = n.add_gate("not_max", GateOp::Not, &[at_max]);
    let tick = n.add_gate("tick", GateOp::And, &[en, not_max]);
    let next = incrementer(&mut n, &c, tick);
    connect_word(&mut n, &c, &next);
    // Overflow would show as the counter reading zero after having been at
    // max — impossible with saturation.
    let wrapped = {
        let at_zero = eq_const(&mut n, &c, 0);
        let seen_max = n.add_register("seen_max", Some(false));
        let seen_next = n.add_gate("seen_next", GateOp::Or, &[seen_max, at_max]);
        n.set_register_next(seen_max, seen_next)
            .expect("seen_max connects");
        n.add_gate("wrapped", GateOp::And, &[at_zero, seen_max])
    };
    let w = watchdog(&mut n, "w_overflow", wrapped);
    n.validate().expect("generated counter validates");
    let p = Property::never(&n, "no_overflow", w);
    Design {
        netlist: n,
        properties: vec![p],
        coverage_sets: Vec::new(),
    }
}

/// A wrapping counter with a watchdog that fires when the count reaches
/// `threshold` (false property `never_reaches`, violated after exactly
/// `threshold + 1` cycles).
pub fn wrapping_counter(bits: usize, threshold: u64) -> Design {
    let mut n = Netlist::new("wrapping_counter");
    let en = n.add_input("en");
    let c = word_register(&mut n, "c", bits, 0);
    let next = incrementer(&mut n, &c, en);
    connect_word(&mut n, &c, &next);
    let hit = eq_const(&mut n, &c, threshold);
    let w = watchdog(&mut n, "w_hit", hit);
    n.validate().expect("generated counter validates");
    let p = Property::never(&n, "never_reaches", w);
    Design {
        netlist: n,
        properties: vec![p],
        coverage_sets: Vec::new(),
    }
}

/// A two-road traffic-light controller: both lights are never green at once
/// (true property `no_crash`). The light FSMs share a phase counter.
pub fn traffic_light() -> Design {
    let mut n = Netlist::new("traffic_light");
    let phase = word_register(&mut n, "phase", 3, 0);
    let tick = n.add_input("tick");
    let next = incrementer(&mut n, &phase, tick);
    connect_word(&mut n, &phase, &next);
    // North-south green during phases 0..2, east-west during 4..6;
    // 3 and 7 are all-red clearance phases.
    let ns_green_now = {
        let ge0 = ge_const(&mut n, &phase, 0);
        let lt3 = {
            let ge3 = ge_const(&mut n, &phase, 3);
            n.add_gate("", GateOp::Not, &[ge3])
        };
        n.add_gate("ns_now", GateOp::And, &[ge0, lt3])
    };
    let ew_green_now = {
        let ge4 = ge_const(&mut n, &phase, 4);
        let lt7 = {
            let ge7 = ge_const(&mut n, &phase, 7);
            n.add_gate("", GateOp::Not, &[ge7])
        };
        n.add_gate("ew_now", GateOp::And, &[ge4, lt7])
    };
    let ns = n.add_register("ns_green", Some(true));
    let ew = n.add_register("ew_green", Some(false));
    n.set_register_next(ns, ns_green_now).expect("ns connects");
    n.set_register_next(ew, ew_green_now).expect("ew connects");
    let crash = n.add_gate("crash", GateOp::And, &[ns, ew]);
    let w = watchdog(&mut n, "w_crash", crash);
    n.add_output("ns_green", ns);
    n.add_output("ew_green", ew);
    n.validate().expect("generated traffic light validates");
    let p = Property::never(&n, "no_crash", w);
    Design {
        netlist: n,
        properties: vec![p],
        coverage_sets: Vec::new(),
    }
}

/// A round-robin arbiter over `clients` requesters: at most one grant per
/// cycle (true property `one_grant`).
pub fn round_robin_arbiter(clients: usize) -> Design {
    assert!(clients >= 2, "an arbiter needs at least two clients");
    let mut n = Netlist::new("round_robin_arbiter");
    let reqs: Vec<_> = (0..clients)
        .map(|k| n.add_input(&format!("req{k}")))
        .collect();
    // One-hot pointer rotating every cycle.
    let ptr: Vec<_> = (0..clients)
        .map(|k| n.add_register(&format!("ptr{k}"), Some(k == 0)))
        .collect();
    for k in 0..clients {
        let prev = ptr[(k + clients - 1) % clients];
        n.set_register_next(ptr[k], prev).expect("ptr connects");
    }
    // Grant the pointed client if it requests.
    let grants: Vec<_> = (0..clients)
        .map(|k| {
            let g = n.add_gate(&format!("g{k}"), GateOp::And, &[ptr[k], reqs[k]]);
            let reg = n.add_register(&format!("grant{k}"), Some(false));
            n.set_register_next(reg, g).expect("grant connects");
            reg
        })
        .collect();
    // Watchdog: two grants at once.
    let mut pair_fires = Vec::new();
    for i in 0..clients {
        for j in i + 1..clients {
            pair_fires.push(n.add_gate("", GateOp::And, &[grants[i], grants[j]]));
        }
    }
    let fire = crate::words::or_reduce(&mut n, &pair_fires);
    let w = watchdog(&mut n, "w_double_grant", fire);
    n.validate().expect("generated arbiter validates");
    let p = Property::never(&n, "one_grant", w);
    Design {
        netlist: n,
        properties: vec![p],
        coverage_sets: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::Cube;
    use rfn_sim::{Simulator, Tv};

    fn run_random(d: &Design, cycles: usize, seed: u64) {
        let n = &d.netlist;
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut state = seed;
        for _ in 0..cycles {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cube: Cube = n
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (state >> (k % 61)) & 1 == 1))
                .collect();
            sim.step(&cube);
            for p in &d.properties {
                if p.name != "never_reaches" {
                    assert_eq!(sim.value(p.signal), Tv::Zero, "{} fired", p.name);
                }
            }
        }
    }

    #[test]
    fn saturating_counter_never_overflows() {
        run_random(&saturating_counter(4), 200, 7);
    }

    #[test]
    fn traffic_light_never_crashes() {
        run_random(&traffic_light(), 200, 11);
    }

    #[test]
    fn arbiter_grants_are_exclusive() {
        run_random(&round_robin_arbiter(4), 200, 13);
    }

    #[test]
    fn wrapping_counter_violates_at_threshold() {
        let d = wrapping_counter(4, 5);
        let n = &d.netlist;
        let en = n.find("en").unwrap();
        let w = d.properties[0].signal;
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        for _ in 0..6 {
            assert_eq!(sim.value(w), Tv::Zero);
            sim.step(&[(en, true)].into_iter().collect());
        }
        // Counter reached 5 in cycle 5; watchdog latches one cycle later.
        sim.step(&[(en, true)].into_iter().collect());
        assert_eq!(sim.value(w), Tv::One);
    }
}
