//! The USB bus controller design (Table 2, coverage sets USB1 and USB2).
//!
//! A simplified USB device controller: a one-hot token-decoder FSM, three
//! endpoint FSMs (3 bits each), a CRC shift register, a bit-stuffing counter
//! and NAK counters. As in the integer unit, a stuck configuration bit
//! (high-speed enable, never negotiated because the chirp counter saturates)
//! makes a slice of the coverage space unreachable in a way only a refined
//! abstraction can see.
//!
//! USB1 covers 6 signals (64 coverage states); USB2 covers 21 signals
//! (2,097,152 coverage states), matching the paper's set sizes.

use rfn_netlist::{CoverageSet, GateOp, Netlist, SignalId};

use crate::words::{coi_coupler, connect_word, eq_const, incrementer, or_reduce, word_register};
use crate::Design;

/// Parameters of [`usb_controller`].
#[derive(Clone, Debug)]
pub struct UsbParams {
    /// Number of endpoint FSMs (at least 3; USB2 needs `3*3 + 4 + 5 + 3 = 21`
    /// signals from the first three).
    pub endpoints: usize,
    /// Width of the NAK counters (BFS-ball pollution).
    pub nak_width: usize,
}

impl Default for UsbParams {
    fn default() -> Self {
        UsbParams {
            endpoints: 3,
            nak_width: 6,
        }
    }
}

/// Generates the USB controller with coverage sets USB1 and USB2.
///
/// # Panics
///
/// Panics if `endpoints < 3`.
pub fn usb_controller(params: &UsbParams) -> Design {
    assert!(params.endpoints >= 3, "need at least 3 endpoints");
    let mut n = Netlist::new("usb_controller");
    let rx_token = n.add_input("rx_token");
    let rx_data = n.add_input("rx_data");
    let rx_eop = n.add_input("rx_eop");
    let host_ack = n.add_input("host_ack");
    let chirp = n.add_input("chirp");

    // Junk NAK counters first (low signal ids -> they fill the BFS ball).
    let nak0 = word_register(&mut n, "nak0", params.nak_width, 0);
    let nak1 = word_register(&mut n, "nak1", params.nak_width, 0);

    // Token decoder: one-hot FSM (IDLE, TOKEN, DATA, HANDSHAKE).
    let tok: Vec<SignalId> = ["tk_idle", "tk_token", "tk_data", "tk_hand"]
        .iter()
        .enumerate()
        .map(|(k, name)| n.add_register(name, Some(k == 0)))
        .collect();

    // Endpoint FSMs: 3-bit binary (0 disabled .. 5 stall; 6,7 unused).
    let eps: Vec<Vec<SignalId>> = (0..params.endpoints)
        .map(|e| word_register(&mut n, &format!("ep{e}"), 3, 1))
        .collect();

    // CRC5 shift register and bit-stuff counter.
    let crc = word_register(&mut n, "crc", 5, 0b11111);
    let stuff = word_register(&mut n, "stuff", 3, 0);

    // High-speed negotiation: the chirp counter saturates at 5, below the 7
    // required to set `hs_en`, so `hs_en` is stuck low.
    let chirp_cnt = word_register(&mut n, "chirp_cnt", 3, 0);
    let hs_en = n.add_register("hs_en", Some(false));

    // --- token decoder transitions ---
    let in_data = tok[2];
    let tk_next: Vec<SignalId> = {
        let ntoken = n.add_gate("", GateOp::Not, &[rx_token]);
        let neop = n.add_gate("", GateOp::Not, &[rx_eop]);
        let idle_hold = n.add_gate("", GateOp::And, &[tok[0], ntoken]);
        let hand_done = n.add_gate("", GateOp::And, &[tok[3], host_ack]);
        let next_idle = n.add_gate("", GateOp::Or, &[idle_hold, hand_done]);
        let next_token = n.add_gate("", GateOp::And, &[tok[0], rx_token]);
        let data_hold = n.add_gate("", GateOp::And, &[tok[2], neop]);
        let next_data_pre = n.add_gate("", GateOp::Or, &[tok[1], data_hold]);
        let next_hand_pre = n.add_gate("", GateOp::And, &[tok[2], rx_eop]);
        let nack = n.add_gate("", GateOp::Not, &[host_ack]);
        let hand_hold = n.add_gate("", GateOp::And, &[tok[3], nack]);
        let next_hand = n.add_gate("", GateOp::Or, &[next_hand_pre, hand_hold]);
        vec![next_idle, next_token, next_data_pre, next_hand]
    };
    for (k, &t) in tok.iter().enumerate() {
        // Couple the junk counters into the decoder's fanin (inert).
        let c = coi_coupler(&mut n, tk_next[k], nak0[params.nak_width - 1]);
        n.set_register_next(t, c).expect("token reg connects");
    }

    // --- endpoint transitions (binary micro-FSM) ---
    // 1 idle -> 2 rx (on DATA phase) -> 3 tx -> 1 ; 4 = high-speed burst
    // (requires hs_en, unreachable) ; 5 = stall (on stuff overflow).
    let stuff_ovf = eq_const(&mut n, &stuff, 7);
    for (e, ep) in eps.iter().enumerate() {
        let sel = eq_const(&mut n, &ep.clone(), 1); // idle
        let in_rx = eq_const(&mut n, &ep.clone(), 2);
        let in_tx = eq_const(&mut n, &ep.clone(), 3);
        let go_rx = n.add_gate("", GateOp::And, &[sel, in_data]);
        let go_burst = n.add_gate("", GateOp::And, &[go_rx, hs_en]);
        let go_tx = n.add_gate("", GateOp::And, &[in_rx, rx_eop]);
        let go_stall = n.add_gate("", GateOp::And, &[in_rx, stuff_ovf]);
        let back_idle = n.add_gate("", GateOp::And, &[in_tx, host_ack]);
        // bit0 = idle(1) | tx(3) | stall(5)
        let b0_t = n.add_gate("", GateOp::Or, &[back_idle, go_tx]);
        let hold_idle = {
            let ngo = n.add_gate("", GateOp::Not, &[go_rx]);
            n.add_gate("", GateOp::And, &[sel, ngo])
        };
        let b0_h = n.add_gate("", GateOp::Or, &[b0_t, hold_idle]);
        let b0_n = n.add_gate("", GateOp::Or, &[b0_h, go_stall]);
        // bit1 = rx(2) | tx(3)
        let hold_rx = {
            let neop = n.add_gate("", GateOp::Not, &[rx_eop]);
            let nov = n.add_gate("", GateOp::Not, &[stuff_ovf]);
            let keep = n.add_gate("", GateOp::And, &[neop, nov]);
            n.add_gate("", GateOp::And, &[in_rx, keep])
        };
        let rx_or_hold = n.add_gate("", GateOp::Or, &[go_rx, hold_rx]);
        let nburst = n.add_gate("", GateOp::Not, &[go_burst]);
        let rx_not_burst = n.add_gate("", GateOp::And, &[rx_or_hold, nburst]);
        let b1_n = n.add_gate("", GateOp::Or, &[rx_not_burst, go_tx]);
        // bit2 = burst(4) | stall(5)
        let b2_n = n.add_gate("", GateOp::Or, &[go_burst, go_stall]);
        let junk = if e == 0 {
            nak0[0]
        } else {
            nak1[(e - 1) % params.nak_width]
        };
        let b0_c = coi_coupler(&mut n, b0_n, junk);
        n.set_register_next(ep[0], b0_c).expect("ep bit connects");
        n.set_register_next(ep[1], b1_n).expect("ep bit connects");
        n.set_register_next(ep[2], b2_n).expect("ep bit connects");
    }

    // CRC shifts during DATA; stuff counter counts consecutive ones.
    let crc_fb = n.add_gate("crc_fb", GateOp::Xor, &[crc[4], rx_data]);
    for k in (1..5).rev() {
        let shifted = n.add_gate("", GateOp::Mux, &[in_data, crc[k], crc[k - 1]]);
        n.set_register_next(crc[k], shifted).expect("crc connects");
    }
    let crc0_next = n.add_gate("", GateOp::Mux, &[in_data, crc[0], crc_fb]);
    n.set_register_next(crc[0], crc0_next)
        .expect("crc connects");

    let ones_run = n.add_gate("ones_run", GateOp::And, &[in_data, rx_data]);
    let stuff_inc = incrementer(&mut n, &stuff, ones_run);
    let nrun = n.add_gate("", GateOp::Not, &[ones_run]);
    let zero_w: Vec<SignalId> = (0..3).map(|_| n.add_const("", false)).collect();
    let stuff_next = crate::words::mux_word(&mut n, nrun, &stuff_inc, &zero_w);
    connect_word(&mut n, &stuff, &stuff_next);

    // Chirp counter saturates at 5; hs_en needs 7: stuck low.
    let chirp_lt5 = {
        let is5 = eq_const(&mut n, &chirp_cnt, 5);
        n.add_gate("", GateOp::Not, &[is5])
    };
    let chirp_tick = n.add_gate("", GateOp::And, &[chirp, chirp_lt5]);
    let chirp_next = incrementer(&mut n, &chirp_cnt, chirp_tick);
    connect_word(&mut n, &chirp_cnt, &chirp_next);
    let chirp_is7 = eq_const(&mut n, &chirp_cnt, 7);
    let hs_next = n.add_gate("hs_next", GateOp::Or, &[hs_en, chirp_is7]);
    n.set_register_next(hs_en, hs_next).expect("hs_en connects");

    // NAK counters count handshake retries (junk, but in the COI).
    let any_stall = {
        let stalls: Vec<SignalId> = eps
            .iter()
            .map(|ep| eq_const(&mut n, &ep.clone(), 5))
            .collect();
        or_reduce(&mut n, &stalls)
    };
    let nak0_next = incrementer(&mut n, &nak0, any_stall);
    connect_word(&mut n, &nak0, &nak0_next);
    let nak1_next = incrementer(&mut n, &nak1, tok[3]);
    connect_word(&mut n, &nak1, &nak1_next);

    n.add_output("hs_en", hs_en);
    n.validate().expect("generated USB controller validates");

    let usb1 = CoverageSet::new(
        "USB1",
        tok.iter()
            .copied()
            .chain([eps[0][0], eps[0][1]])
            .collect::<Vec<_>>(),
    );
    let usb2_signals: Vec<SignalId> = eps
        .iter()
        .take(3)
        .flat_map(|ep| ep.iter().copied())
        .chain(tok.iter().copied())
        .chain(crc.iter().copied())
        .chain(stuff.iter().copied())
        .collect();
    let usb2 = CoverageSet::new("USB2", usb2_signals);
    assert_eq!(usb1.signals.len(), 6);
    assert_eq!(usb2.signals.len(), 21);

    Design {
        netlist: n,
        properties: Vec::new(),
        coverage_sets: vec![usb1, usb2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::Cube;
    use rfn_sim::{Simulator, Tv};

    #[test]
    fn coverage_set_sizes_match_the_paper() {
        let d = usb_controller(&UsbParams::default());
        assert_eq!(d.coverage_set("USB1").unwrap().num_states(), 64);
        assert_eq!(d.coverage_set("USB2").unwrap().num_states(), 2_097_152);
    }

    #[test]
    fn token_fsm_stays_one_hot() {
        let d = usb_controller(&UsbParams::default());
        let n = &d.netlist;
        let toks: Vec<_> = ["tk_idle", "tk_token", "tk_data", "tk_hand"]
            .iter()
            .map(|t| n.find(t).unwrap())
            .collect();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut state = 0x5a5a5au64;
        for cycle in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cube: Cube = n
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (state >> (k % 57)) & 1 == 1))
                .collect();
            sim.step(&cube);
            let hot: usize = toks.iter().filter(|&&t| sim.value(t) == Tv::One).count();
            assert_eq!(hot, 1, "token FSM not one-hot at cycle {cycle}");
        }
    }

    #[test]
    fn hs_en_and_burst_states_stay_unreachable() {
        let d = usb_controller(&UsbParams::default());
        let n = &d.netlist;
        let hs = n.find("hs_en").unwrap();
        let ep0_b2 = n.find("ep0[2]").unwrap();
        let ep0_b0 = n.find("ep0[0]").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut state = 0x777u64;
        for _ in 0..800 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cube: Cube = n
                .inputs()
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (state >> (k % 53)) & 1 == 1))
                .collect();
            sim.step(&cube);
            assert_eq!(sim.value(hs), Tv::Zero, "hs_en must stay low");
            // Burst state is 4 = (b2=1, b1=0, b0=0).
            let b2 = sim.value(ep0_b2) == Tv::One;
            let b0 = sim.value(ep0_b0) == Tv::One;
            assert!(!b2 || b0, "endpoint entered the burst state");
        }
    }

    #[test]
    fn endpoints_cycle_through_rx_tx() {
        let d = usb_controller(&UsbParams::default());
        let n = &d.netlist;
        let rx_token = n.find("rx_token").unwrap();
        let rx_eop = n.find("rx_eop").unwrap();
        let host_ack = n.find("host_ack").unwrap();
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let drive = |sim: &mut Simulator, lits: &[(rfn_netlist::SignalId, bool)]| {
            let mut cube: Cube = n.inputs().iter().map(|&i| (i, false)).collect();
            for &(s, v) in lits {
                cube.remove(s);
                cube.insert(s, v).unwrap();
            }
            sim.step(&cube);
        };
        let ep_val = |sim: &Simulator| -> u64 {
            (0..3)
                .map(|k| {
                    let b = n.find(&format!("ep0[{k}]")).unwrap();
                    u64::from(sim.value(b) == Tv::One) << k
                })
                .sum()
        };
        assert_eq!(ep_val(&sim), 1, "starts idle");
        drive(&mut sim, &[(rx_token, true)]); // -> TOKEN
        drive(&mut sim, &[]); // -> DATA
        drive(&mut sim, &[]); // endpoint sees DATA -> rx
        assert_eq!(ep_val(&sim), 2, "endpoint in rx");
        drive(&mut sim, &[(rx_eop, true)]); // -> tx
        assert_eq!(ep_val(&sim), 3, "endpoint in tx");
        drive(&mut sim, &[(host_ack, true)]); // -> idle
        assert_eq!(ep_val(&sim), 1, "endpoint back to idle");
    }
}
