//! Shared resource-governance primitives for every RFN engine.
//!
//! The DAC 2001 RFN flow hands each engine — BDD reachability, hybrid trace
//! extraction, sequential ATPG, packed simulation — a bounded slice of
//! effort, and the refinement loop degrades gracefully when a slice runs
//! out. This crate centralizes that contract in one [`Budget`] value that is
//! cloned (cheaply; interior state is shared) into every engine:
//!
//! * a **wall-clock deadline** anchored when the budget is created,
//! * optional **per-phase soft quotas** ([`GovPhase`]) that cap a single
//!   phase invocation below the global deadline,
//! * live **BDD-node and memory ceilings** enforced by the BDD manager's
//!   allocator,
//! * a shared **ATPG backtrack allowance** drained across all ATPG calls
//!   made under the same budget, and
//! * a cooperative [`CancelToken`] (an `Arc`'d atomic flag) that engines
//!   poll at their natural checkpoints: unique-table insert batches, reach
//!   fixpoint steps, ATPG backtrack points and packed-sim batch boundaries.
//!
//! Exhaustion is reported as an [`Exhaustion`] value which the engines map
//! onto their existing abort machinery (`AbortReason` in `rfn-mc`,
//! `Inconclusive` in `rfn-core`), so a budget that runs out anywhere in the
//! stack surfaces as one structured, user-visible reason.
//!
//! The crate is dependency-free and `no_std`-adjacent (it uses only
//! `std::time` and `std::sync::atomic`), so every engine crate can depend
//! on it without cycles.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a controller and any
/// number of running engines.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. Engines poll [`CancelToken::is_cancelled`] (a relaxed
/// atomic load, cheap enough for inner loops) at their natural checkpoints
/// and unwind with [`Exhaustion::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Box<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    ///
    /// Cancelling a [child](CancelToken::child) token never propagates to
    /// its parent — only downwards, to clones of the child itself.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested, here or on any ancestor.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Creates a linked child token.
    ///
    /// The child observes cancellation of `self` (and transitively of any
    /// ancestor), but cancelling the child leaves `self` untouched. A
    /// portfolio controller hands each racing lane a child token: the first
    /// conclusive lane cancels its siblings' children while the shared
    /// parent — and with it every other verification job — keeps running.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Box::new(self.clone())),
        }
    }
}

/// The phases of the RFN loop that can carry a soft time quota.
///
/// A quota bounds one *invocation* of that phase (measured from the moment
/// the engine asks for its deadline), never extending past the budget's
/// global wall-clock deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GovPhase {
    /// Symbolic (BDD) reachability on the abstract model.
    Reach,
    /// Hybrid abstract-trace extraction (pre-image sweep).
    Hybrid,
    /// Concretization: random simulation plus sequential ATPG.
    Concretize,
    /// Refinement-candidate selection.
    Refine,
    /// SAT-based bounded model checking (time-frame unrolling).
    Bmc,
}

impl GovPhase {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            GovPhase::Reach => 0,
            GovPhase::Hybrid => 1,
            GovPhase::Concretize => 2,
            GovPhase::Refine => 3,
            GovPhase::Bmc => 4,
        }
    }

    /// Stable lower-case name (used in trace fields and checkpoints).
    pub fn as_str(self) -> &'static str {
        match self {
            GovPhase::Reach => "reach",
            GovPhase::Hybrid => "hybrid",
            GovPhase::Concretize => "concretize",
            GovPhase::Refine => "refine",
            GovPhase::Bmc => "bmc",
        }
    }
}

impl fmt::Display for GovPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a governed engine stopped before reaching a verdict.
///
/// Engines translate this into their local abort enums; the strings from
/// [`Exhaustion::as_str`] are stable and surface verbatim in
/// `Inconclusive { reason }` outcomes and trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Exhaustion {
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline (or a phase quota) passed.
    TimeLimit,
    /// The memory ceiling was exceeded.
    MemoryLimit,
    /// The BDD-node ceiling was exceeded.
    NodeLimit,
    /// The shared ATPG backtrack allowance was drained.
    Backtracks,
}

impl Exhaustion {
    /// Stable snake-case identifier (used in trace events and exit reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Exhaustion::Cancelled => "cancelled",
            Exhaustion::TimeLimit => "time limit exceeded",
            Exhaustion::MemoryLimit => "memory limit exceeded",
            Exhaustion::NodeLimit => "node limit exceeded",
            Exhaustion::Backtracks => "backtrack allowance exhausted",
        }
    }
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared effort budget governing one verification run end to end.
///
/// A `Budget` is created once (by the CLI, a [`VerifySession`], or a test)
/// and cloned into every engine the run touches. Clones share the
/// cancellation flag and the backtrack allowance, so the budget behaves as
/// *one* pool no matter how many engines or worker threads draw from it.
/// The wall-clock deadline is anchored at construction
/// ([`Budget::restarted`] re-anchors it, e.g. after resuming from a
/// checkpoint).
///
/// The default budget is unlimited in every dimension; builders narrow it:
///
/// ```
/// use std::time::Duration;
/// use rfn_govern::{Budget, GovPhase};
///
/// let budget = Budget::unlimited()
///     .with_wall_clock(Duration::from_secs(300))
///     .with_phase_quota(GovPhase::Reach, Duration::from_secs(60))
///     .with_node_ceiling(8_000_000)
///     .with_backtrack_allowance(500_000);
/// assert!(budget.check().is_ok());
/// ```
///
/// [`VerifySession`]: https://docs.rs/rfn-core
#[derive(Clone, Debug)]
pub struct Budget {
    start: Instant,
    wall_limit: Option<Duration>,
    quotas: [Option<Duration>; GovPhase::COUNT],
    node_ceiling: usize,
    memory_ceiling: usize,
    backtracks: Option<Arc<AtomicU64>>,
    cancel: CancelToken,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits: every check passes until a clone is
    /// cancelled.
    pub fn unlimited() -> Budget {
        Budget {
            start: Instant::now(),
            wall_limit: None,
            quotas: [None; GovPhase::COUNT],
            node_ceiling: usize::MAX,
            memory_ceiling: usize::MAX,
            backtracks: None,
            cancel: CancelToken::new(),
        }
    }

    /// Sets the global wall-clock limit, measured from the budget's anchor
    /// instant (construction, or the last [`Budget::restarted`] call).
    pub fn with_wall_clock(mut self, limit: Duration) -> Budget {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets a soft quota for one phase. A phase invocation's deadline is
    /// `min(global deadline, phase entry + quota)`.
    pub fn with_phase_quota(mut self, phase: GovPhase, quota: Duration) -> Budget {
        self.quotas[phase.index()] = Some(quota);
        self
    }

    /// Caps the number of live BDD nodes a manager governed by this budget
    /// may hold.
    pub fn with_node_ceiling(mut self, nodes: usize) -> Budget {
        self.node_ceiling = nodes;
        self
    }

    /// Caps the approximate bytes of BDD storage (unique tables, caches and
    /// node pool) a governed manager may hold.
    pub fn with_memory_ceiling(mut self, bytes: usize) -> Budget {
        self.memory_ceiling = bytes;
        self
    }

    /// Grants a shared pool of ATPG backtracks, drained across every ATPG
    /// call made under this budget (and all its clones).
    pub fn with_backtrack_allowance(mut self, backtracks: u64) -> Budget {
        self.backtracks = Some(Arc::new(AtomicU64::new(backtracks)));
        self
    }

    /// Replaces the cancellation token, sharing an externally owned flag.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// Re-anchors the wall clock at "now" (used when resuming a checkpoint
    /// with the remaining time carried over as the new wall limit).
    pub fn restarted(mut self) -> Budget {
        self.start = Instant::now();
        self
    }

    /// The configured wall-clock limit, if any.
    pub fn wall_clock(&self) -> Option<Duration> {
        self.wall_limit
    }

    /// The BDD-node ceiling (`usize::MAX` when unlimited).
    pub fn node_ceiling(&self) -> usize {
        self.node_ceiling
    }

    /// The memory ceiling in bytes (`usize::MAX` when unlimited).
    pub fn memory_ceiling(&self) -> usize {
        self.memory_ceiling
    }

    /// The soft quota configured for `phase`, if any.
    pub fn phase_quota(&self, phase: GovPhase) -> Option<Duration> {
        self.quotas[phase.index()]
    }

    /// Remaining backtracks in the shared allowance (`None` = unlimited).
    pub fn backtracks_remaining(&self) -> Option<u64> {
        self.backtracks.as_ref().map(|b| b.load(Ordering::Relaxed))
    }

    /// Time elapsed since the budget's anchor instant.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The absolute global deadline, if a wall-clock limit is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.wall_limit.map(|l| self.start + l)
    }

    /// The deadline for a phase invocation entered *now*: the phase quota
    /// (if configured) measured from this call, clamped to the global
    /// deadline.
    pub fn deadline_for(&self, phase: GovPhase) -> Option<Instant> {
        let global = self.deadline();
        let quota = self.quotas[phase.index()].map(|q| Instant::now() + q);
        match (global, quota) {
            (Some(g), Some(q)) => Some(g.min(q)),
            (d, None) | (None, d) => d,
        }
    }

    /// Wall-clock time remaining before the global deadline (`None` when no
    /// limit is set; zero once the deadline has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether every dimension is unlimited (quotas, ceilings, allowance
    /// and wall clock all unset).
    pub fn is_unlimited(&self) -> bool {
        self.wall_limit.is_none()
            && self.quotas.iter().all(Option::is_none)
            && self.node_ceiling == usize::MAX
            && self.memory_ceiling == usize::MAX
            && self.backtracks.is_none()
    }

    /// A clone of the cancellation token for external controllers.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cancellation of every engine sharing this budget.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The cheap cooperative check engines poll at their checkpoints:
    /// cancellation first, then the global wall-clock deadline.
    pub fn check(&self) -> Result<(), Exhaustion> {
        if self.cancel.is_cancelled() {
            return Err(Exhaustion::Cancelled);
        }
        if let Some(deadline) = self.deadline() {
            if Instant::now() >= deadline {
                return Err(Exhaustion::TimeLimit);
            }
        }
        Ok(())
    }

    /// Checks an engine-reported memory footprint against the ceiling.
    pub fn check_memory(&self, bytes: usize) -> Result<(), Exhaustion> {
        if bytes > self.memory_ceiling {
            Err(Exhaustion::MemoryLimit)
        } else {
            Ok(())
        }
    }

    /// Draws `n` backtracks from the shared allowance; fails with
    /// [`Exhaustion::Backtracks`] once the pool is empty. Unlimited budgets
    /// always succeed.
    pub fn charge_backtracks(&self, n: u64) -> Result<(), Exhaustion> {
        let Some(pool) = &self.backtracks else {
            return Ok(());
        };
        let drawn = pool.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            if cur >= n {
                Some(cur - n)
            } else {
                None
            }
        });
        match drawn {
            Ok(_) => Ok(()),
            Err(_) => Err(Exhaustion::Backtracks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert!(b.check_memory(usize::MAX - 1).is_ok());
        assert!(b.charge_backtracks(u64::MAX).is_ok());
        assert_eq!(b.deadline(), None);
        assert_eq!(b.remaining(), None);
        assert_eq!(b.deadline_for(GovPhase::Reach), None);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        assert!(clone.check().is_ok());
        b.cancel();
        assert_eq!(clone.check(), Err(Exhaustion::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn child_tokens_cancel_downwards_only() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        let grandchild = a.child();
        // Cancelling one child leaves its siblings and the parent running.
        a.cancel();
        assert!(a.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
        // Cancelling the parent reaches every descendant.
        parent.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn budget_with_child_token_sees_parent_cancel() {
        let shared = Budget::unlimited();
        let lane = shared.clone().with_cancel_token(shared.token().child());
        assert!(lane.check().is_ok());
        lane.cancel();
        assert!(shared.check().is_ok(), "lane cancel must not leak upwards");
        let lane2 = shared.clone().with_cancel_token(shared.token().child());
        shared.cancel();
        assert_eq!(lane2.check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn expired_wall_clock_reports_time_limit() {
        let b = Budget::unlimited().with_wall_clock(Duration::ZERO);
        assert_eq!(b.check(), Err(Exhaustion::TimeLimit));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn phase_quota_clamps_to_global_deadline() {
        let b = Budget::unlimited()
            .with_wall_clock(Duration::from_secs(1))
            .with_phase_quota(GovPhase::Reach, Duration::from_secs(3600));
        let global = b.deadline().unwrap();
        let phase = b.deadline_for(GovPhase::Reach).unwrap();
        assert!(phase <= global);
        // A phase with a tight quota ends before the global deadline.
        let tight = Budget::unlimited()
            .with_wall_clock(Duration::from_secs(3600))
            .with_phase_quota(GovPhase::Concretize, Duration::ZERO);
        let phase = tight.deadline_for(GovPhase::Concretize).unwrap();
        assert!(phase < tight.deadline().unwrap());
    }

    #[test]
    fn backtrack_allowance_is_a_shared_pool() {
        let b = Budget::unlimited().with_backtrack_allowance(10);
        let clone = b.clone();
        assert!(b.charge_backtracks(6).is_ok());
        assert!(clone.charge_backtracks(4).is_ok());
        assert_eq!(clone.charge_backtracks(1), Err(Exhaustion::Backtracks));
        assert_eq!(b.backtracks_remaining(), Some(0));
    }

    #[test]
    fn memory_ceiling_checks_reported_footprint() {
        let b = Budget::unlimited().with_memory_ceiling(1024);
        assert!(b.check_memory(1024).is_ok());
        assert_eq!(b.check_memory(1025), Err(Exhaustion::MemoryLimit));
    }

    #[test]
    fn restarted_reanchors_the_clock() {
        let b = Budget::unlimited().with_wall_clock(Duration::from_millis(50));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.check(), Err(Exhaustion::TimeLimit));
        let b = b.restarted();
        assert!(b.check().is_ok());
    }
}
