//! Verifying a design written in the text netlist format: parse it, inspect
//! the engines' intermediate artifacts (COI, abstraction, min-cut), then run
//! the full RFN loop.
//!
//! ```text
//! cargo run --example custom_design --release
//! ```

use rfn::core::{Rfn, RfnOptions, RfnOutcome};
use rfn::netlist::{compute_min_cut, parse_netlist, Abstraction, Coi, Property};

/// A token-ring arbiter in the text format: three stations pass a one-hot
/// token; a station may only transmit while holding the token.
const DESIGN: &str = "\
design token_ring
input want0
input want1
input want2

# one-hot rotating token
reg tok0 1 tok2
reg tok1 0 tok0
reg tok2 0 tok1

# transmit latches: want AND token
gate tx0_n and want0 tok0
gate tx1_n and want1 tok1
gate tx2_n and want2 tok2
reg tx0 0 tx0_n
reg tx1 0 tx1_n
reg tx2 0 tx2_n

# watchdog: two stations transmitting at once
gate c01 and tx0 tx1
gate c02 and tx0 tx2
gate c12 and tx1 tx2
gate clash_a or c01 c02
gate clash   or clash_a c12
gate w_next  or w clash
reg w 0 w_next
output clash clash
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = parse_netlist(DESIGN)?;
    println!("parsed: {n}");

    let w = n.find("w").expect("watchdog exists");
    let property = Property::never(&n, "one_transmitter", w);

    // Engine artifacts a user might inspect before verifying.
    let coi = Coi::of(&n, [w]);
    println!(
        "COI of the property: {} registers, {} gates",
        coi.num_registers(),
        coi.num_gates()
    );
    let view = Abstraction::from_registers([w]).view(&n, [w])?;
    let mc = compute_min_cut(&n, &view);
    println!(
        "initial abstraction: {} pseudo-inputs, min-cut reduces {} inputs to {}",
        view.pseudo_inputs().len(),
        mc.original_input_count,
        mc.num_inputs()
    );

    match Rfn::new(&n, &property, RfnOptions::default())?.run()? {
        RfnOutcome::Proved { stats } => {
            println!(
                "PROVED `one_transmitter`: abstraction grew to {} of {} registers \
                 over {} iterations",
                stats.abstract_registers,
                coi.num_registers(),
                stats.iterations
            );
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    Ok(())
}
