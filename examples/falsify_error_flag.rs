//! Reproduces the paper's headline falsification: the `error_flag` design
//! violation on the processor module, found through an abstract error trace
//! that guides sequential ATPG on the full ≈5,000-register design.
//!
//! ```text
//! cargo run --example falsify_error_flag --release [-- --quick]
//! ```

use rfn::core::{validate_trace, Rfn, RfnOptions, RfnOutcome};
use rfn::designs::{processor_module, ProcessorParams};
use rfn::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        ProcessorParams {
            width: 16,
            regfile_words: 8,
            store_entries: 4,
            cache_lines: 4,
            pipe_stages: 2,
            multipliers: 2,
            stall_threshold: 27,
        }
    } else {
        ProcessorParams::default()
    };
    let design = processor_module(&params);
    let property = design.property("error_flag").expect("property exists");
    println!(
        "design: {} ({} registers, {} gates)",
        design.netlist.name(),
        design.netlist.num_registers(),
        design.netlist.num_gates()
    );

    let options = RfnOptions {
        verbosity: 1,
        ..RfnOptions::default()
    };
    let outcome = Rfn::new(&design.netlist, property, options)?.run()?;
    let RfnOutcome::Falsified { trace, stats } = outcome else {
        println!("unexpected outcome: {outcome:?}");
        return Ok(());
    };
    println!(
        "FALSIFIED `error_flag`: {}-cycle error trace, {} refinement iterations, \
         final abstraction {} of {} COI registers",
        trace.num_cycles(),
        stats.iterations,
        stats.abstract_registers,
        stats.coi_registers
    );

    // Double-check by concrete simulation, then show the violating inputs.
    assert!(validate_trace(&design.netlist, property, &trace)?);
    let mut sim = Simulator::new(&design.netlist)?;
    assert!(sim.replay(&trace));
    println!("\nerror trace (cube form; unlisted inputs are don't-cares):");
    let shown = trace.steps().len().min(6);
    for (i, step) in trace.steps().iter().take(shown).enumerate() {
        println!(
            "  cycle {i}: inputs [{}]",
            step.inputs.display(&design.netlist)
        );
    }
    if trace.steps().len() > shown {
        println!(
            "  ... {} more cycles holding the stall high ...",
            trace.steps().len() - shown
        );
    }
    Ok(())
}
