//! Unreachable-coverage-state analysis (the paper's second experiment):
//! classify the 1,024 coverage states of an integer-unit signal set with the
//! RFN loop, and compare against the BFS abstraction baseline.
//!
//! ```text
//! cargo run --example coverage_analysis --release
//! ```

use rfn::core::{analyze_coverage, bfs_coverage, CoverageOptions};
use rfn::designs::{integer_unit, IntegerUnitParams};
use rfn::mc::ReachOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = IntegerUnitParams {
        stages: 5,
        counters_per_stage: 1,
        counter_width: 5,
        data_width: 4,
    };
    let design = integer_unit(&params);
    println!(
        "design: {} ({} registers, {} gates)",
        design.netlist.name(),
        design.netlist.num_registers(),
        design.netlist.num_gates()
    );

    for set in &design.coverage_sets {
        let rfn = analyze_coverage(&design.netlist, set, &CoverageOptions::default())?;
        let bfs = bfs_coverage(
            &design.netlist,
            set,
            60,
            4_000_000,
            &ReachOptions::default(),
        )?;
        println!(
            "{}: {} coverage states | RFN: {} unreachable, {} reachable, {} unresolved \
             (abstraction {} regs, {:.2?}) | BFS(60): {} unreachable ({:.2?})",
            set.name,
            set.num_states(),
            rfn.unreachable,
            rfn.reachable,
            rfn.unresolved,
            rfn.abstract_registers,
            rfn.elapsed,
            bfs.unreachable,
            bfs.elapsed
        );
        assert!(
            rfn.unreachable >= bfs.unreachable,
            "RFN must beat or match BFS (the paper's Table 2 observation)"
        );
    }
    Ok(())
}
