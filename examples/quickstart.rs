//! Quickstart: build a tiny gate-level design by hand and verify a safety
//! property with the RFN abstraction-refinement loop.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use rfn::core::{Rfn, RfnOptions, RfnOutcome};
use rfn::netlist::{GateOp, Netlist, Property};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-requester handshake: `busy` rises with a request and falls with
    // `done`; the watchdog checks that `ack` is never given while idle.
    let mut n = Netlist::new("handshake");
    let req = n.add_input("req");
    let done = n.add_input("done");

    let busy = n.add_register("busy", Some(false));
    let not_done = n.add_gate("not_done", GateOp::Not, &[done]);
    let hold = n.add_gate("hold", GateOp::And, &[busy, not_done]);
    let busy_next = n.add_gate("busy_next", GateOp::Or, &[hold, req]);
    n.set_register_next(busy, busy_next)?;

    // ack is granted one cycle into a busy period.
    let ack = n.add_register("ack", Some(false));
    n.set_register_next(ack, busy)?;

    // Watchdog: ack while the engine was never busy in the previous cycle.
    let busy_d = n.add_register("busy_d", Some(false));
    n.set_register_next(busy_d, busy)?;
    let not_busy_d = n.add_gate("not_busy_d", GateOp::Not, &[busy_d]);
    let orphan_ack = n.add_gate("orphan_ack", GateOp::And, &[ack, not_busy_d]);
    let w = n.add_register("watchdog", Some(false));
    let w_next = n.add_gate("w_next", GateOp::Or, &[w, orphan_ack]);
    n.set_register_next(w, w_next)?;

    // A pile of irrelevant state to give RFN something to abstract away.
    let mut prev = req;
    for k in 0..40 {
        let r = n.add_register(&format!("shadow{k}"), Some(false));
        n.set_register_next(r, prev)?;
        prev = r;
    }
    n.validate()?;

    let property = Property::never(&n, "no_orphan_ack", w);
    println!("design: {n}");

    let options = RfnOptions {
        verbosity: 1, // one line per refinement iteration on stderr
        ..RfnOptions::default()
    };
    match Rfn::new(&n, &property, options)?.run()? {
        RfnOutcome::Proved { stats } => {
            println!(
                "PROVED `{}` with {} of {} COI registers in the abstract model \
                 ({} iterations, {:.2?})",
                property.name,
                stats.abstract_registers,
                stats.coi_registers,
                stats.iterations,
                stats.elapsed
            );
        }
        RfnOutcome::Falsified { trace, .. } => {
            println!("FALSIFIED `{}`:", property.name);
            print!("{}", trace.display(&n));
        }
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("INCONCLUSIVE: {reason}");
        }
    }
    Ok(())
}
