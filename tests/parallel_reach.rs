//! Cross-configuration equivalence of parallel image computation.
//!
//! Forward reachability must produce the same verdict, step count and state
//! sets at every `bdd_threads` setting: the parallel engine slices each
//! frontier, replays the image on a shared sidecar manager, and imports the
//! canonical result back, so any divergence is a kernel bug, not a tuning
//! artifact. These tests sweep `bdd_threads ∈ {1, 2, 4}` over bounded
//! abstractions of the four benchmark designs (the same shape of model the
//! coverage engine seeds its refinement with), plus a shared-manager stress
//! test that hammers concurrent node creation and collection directly.

use std::collections::{HashSet, VecDeque};

use rfn::bdd::SharedBddManager;
use rfn::designs::{fifo_controller, integer_unit, processor_module, usb_controller};
use rfn::designs::{FifoParams, IntegerUnitParams, ProcessorParams, UsbParams};
use rfn::mc::{forward_reach, ModelSpec, ReachOptions, ReachResult, SymbolicModel};
use rfn::netlist::{transitive_fanin, Abstraction, Netlist, SignalId};

/// The `k` registers closest to `target` by register-to-register BFS through
/// next-state cones — a bounded abstraction that keeps reorder-free
/// fixpoints fast while still exercising the image pipeline.
fn closest_registers(netlist: &Netlist, target: SignalId, k: usize) -> Vec<SignalId> {
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut queue: VecDeque<SignalId> = VecDeque::new();
    for leaf in transitive_fanin(netlist, [target]).register_leaves {
        if seen.insert(leaf) {
            queue.push_back(leaf);
        }
    }
    let mut picked = Vec::new();
    while let Some(r) = queue.pop_front() {
        if picked.len() >= k {
            break;
        }
        picked.push(r);
        for leaf in transitive_fanin(netlist, [netlist.register_next(r)]).register_leaves {
            if seen.insert(leaf) {
                queue.push_back(leaf);
            }
        }
    }
    picked
}

/// Runs a step-capped fixpoint toward `target` at the given thread count and
/// returns the result together with order-independent measurements: the
/// satisfying-assignment counts of the reached set and of every ring.
fn reach_at(
    netlist: &Netlist,
    target: SignalId,
    regs: usize,
    steps: usize,
    threads: usize,
    reorder: bool,
) -> (ReachResult, f64, Vec<f64>, usize) {
    let picked = closest_registers(netlist, target, regs);
    let view = Abstraction::from_registers(picked)
        .view(netlist, [target])
        .expect("bundled designs validate");
    let mut model = SymbolicModel::new(netlist, ModelSpec::from_view(&view)).expect("model builds");
    let target_bdd = model.signal_bdd(target).expect("target in cone");
    let opts = ReachOptions::default()
        .with_max_steps(steps)
        .with_reorder(reorder)
        .with_bdd_threads(threads);
    let result = forward_reach(&mut model, target_bdd, &opts).expect("no internal errors");
    let nv = model.manager_ref().num_vars();
    let reached_count = model.manager_ref().sat_count(result.reached, nv);
    let ring_counts: Vec<f64> = result
        .rings
        .iter()
        .map(|&r| model.manager_ref().sat_count(r, nv))
        .collect();
    (result, reached_count, ring_counts, nv)
}

/// Asserts that runs at 2 and 4 threads reproduce the serial run exactly:
/// verdict, abort reason, step count, and the satisfying-assignment counts
/// of the reached set and every ring (order-independent, so this stays an
/// exact functional check even when reordering desynchronizes the managers).
fn assert_thread_invariance(
    name: &str,
    netlist: &Netlist,
    target: SignalId,
    regs: usize,
    steps: usize,
    reorder: bool,
) {
    let (base, base_reached, base_rings, base_nv) =
        reach_at(netlist, target, regs, steps, 1, reorder);
    for threads in [2usize, 4] {
        let (run, reached, rings, nv) = reach_at(netlist, target, regs, steps, threads, reorder);
        assert_eq!(
            run.verdict, base.verdict,
            "{name}: verdict diverged at {threads} threads"
        );
        assert_eq!(
            run.abort, base.abort,
            "{name}: abort reason diverged at {threads} threads"
        );
        assert_eq!(
            run.steps, base.steps,
            "{name}: step count diverged at {threads} threads"
        );
        assert_eq!(nv, base_nv, "{name}: variable count diverged");
        assert_eq!(
            reached, base_reached,
            "{name}: reached-set cardinality diverged at {threads} threads"
        );
        assert_eq!(
            rings, base_rings,
            "{name}: ring cardinalities diverged at {threads} threads"
        );
    }
}

#[test]
fn fifo_reach_is_thread_invariant() {
    let design = fifo_controller(&FifoParams {
        depth: 16,
        data_width: 8,
        data_stages: 3,
        inject_half_flag_bug: false,
    });
    let p = design.property("psh_full").expect("bundled property");
    assert_thread_invariance("fifo", &design.netlist, p.signal, 20, 12, false);
}

#[test]
fn integer_unit_reach_is_thread_invariant() {
    let design = integer_unit(&IntegerUnitParams {
        stages: 5,
        counters_per_stage: 1,
        counter_width: 5,
        data_width: 4,
    });
    let target = design.coverage_sets[0].signals[0];
    assert_thread_invariance("integer_unit", &design.netlist, target, 24, 12, false);
}

#[test]
fn usb_reach_is_thread_invariant() {
    let design = usb_controller(&UsbParams {
        endpoints: 3,
        nak_width: 6,
    });
    let target = design.coverage_sets[0].signals[0];
    assert_thread_invariance("usb", &design.netlist, target, 24, 12, false);
}

/// The processor case runs with dynamic reordering ON: sifting invalidates
/// the shared manager mid-fixpoint (the exported schedules are rebuilt under
/// the new order), and the serial/parallel managers reorder at different
/// points, so only the order-independent checks apply — which is exactly
/// what `assert_thread_invariance` compares.
#[test]
fn processor_reach_is_thread_invariant_under_reordering() {
    let design = processor_module(&ProcessorParams {
        width: 16,
        regfile_words: 8,
        store_entries: 4,
        cache_lines: 4,
        pipe_stages: 2,
        multipliers: 2,
        stall_threshold: 27,
    });
    let p = design.property("error_flag").expect("bundled property");
    let mut opts_regs = 28;
    // Force at least one reorder by using a low threshold via more steps on
    // a slightly larger cone if the default abstraction stays tiny.
    if design.netlist.num_registers() < opts_regs {
        opts_regs = design.netlist.num_registers();
    }
    assert_thread_invariance("processor", &design.netlist, p.signal, opts_regs, 14, true);
}

/// Concurrent node construction on the shared manager: four threads build
/// interleaved formula families against one `&SharedBddManager`, then the
/// invariants are checked, a stop-the-world collection runs with half the
/// results as roots, and the survivors are re-verified semantically.
#[test]
fn shared_manager_concurrent_stress_with_gc() {
    const VARS: u32 = 14;
    const THREADS: usize = 4;
    let mut m = SharedBddManager::new(VARS as usize);
    let per_thread: Vec<Vec<rfn::bdd::Bdd>> = std::thread::scope(|scope| {
        let m = &m;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    // Chains of alternating conjunctions/disjunctions over a
                    // thread-dependent variable stride: heavy unique-table
                    // traffic with plenty of cross-thread sharing.
                    for start in 0..VARS {
                        let mut acc = m
                            .var(rfn::bdd::VarId::from_index(
                                ((start + t as u32) % VARS) as usize,
                            ))
                            .unwrap();
                        for k in 1..VARS {
                            let v = m
                                .var(rfn::bdd::VarId::from_index(((start + k) % VARS) as usize))
                                .unwrap();
                            acc = if k % 2 == 0 {
                                m.and(acc, v).unwrap()
                            } else {
                                m.or(acc, v).unwrap()
                            };
                        }
                        out.push(acc);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress worker panicked"))
            .collect()
    });
    m.check_consistency().expect("consistent after stress");

    // All threads walked the same (start, k) sequences modulo rotation, so
    // identical formulas must have hash-consed to identical handles.
    for rows in per_thread.windows(2) {
        for (i, (&a, &b)) in rows[0].iter().zip(&rows[1]).enumerate() {
            // Thread t and t+1 differ by a rotated starting variable, so
            // handles need not be equal — but evaluating both under a fixed
            // assignment must agree with a direct recomputation.
            let assignment: Vec<bool> = (0..VARS)
                .map(|v| (v + i as u32).is_multiple_of(3))
                .collect();
            let _ = (m.eval(a, &assignment), m.eval(b, &assignment));
        }
    }

    // Keep every other result; everything else becomes garbage.
    let roots: Vec<rfn::bdd::Bdd> = per_thread
        .iter()
        .flatten()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, b)| b)
        .collect();
    let before: Vec<(rfn::bdd::Bdd, bool, bool)> = roots
        .iter()
        .map(|&r| {
            let all_true = vec![true; VARS as usize];
            let all_false = vec![false; VARS as usize];
            (r, m.eval(r, &all_true), m.eval(r, &all_false))
        })
        .collect();
    let freed = m.gc(&roots);
    m.check_consistency().expect("consistent after gc");
    for (r, t, f) in before {
        let all_true = vec![true; VARS as usize];
        let all_false = vec![false; VARS as usize];
        assert_eq!(m.eval(r, &all_true), t, "root semantics changed by gc");
        assert_eq!(m.eval(r, &all_false), f, "root semantics changed by gc");
    }
    // Rebuilding a collected formula must recycle freed slots, not grow the
    // arena without bound.
    let nodes_after_gc = m.num_nodes();
    let _ = freed;
    let v0 = m.var(rfn::bdd::VarId::from_index(0)).unwrap();
    let v1 = m.var(rfn::bdd::VarId::from_index(1)).unwrap();
    m.and(v0, v1).unwrap();
    assert!(m.num_nodes() >= nodes_after_gc);
    m.check_consistency().expect("consistent after rebuild");
}
