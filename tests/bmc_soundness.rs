//! Cross-check of the SAT bounded-model-checking engine against the exact
//! plain symbolic model checker: on every design where plain MC reaches a
//! verdict, BMC must falsify at exactly the same depth (with a concretely
//! replaying counterexample) and must never falsify a proved property.
//!
//! Runs over the four paper designs (scaled down so plain MC stays exact)
//! plus randomized small sequential designs.

use proptest::prelude::*;
use rfn::core::{validate_trace, verify_bmc, BmcOptions, BmcVerdict};
use rfn::designs::{
    fifo_controller, integer_unit, processor_module, usb_controller, Design, FifoParams,
    IntegerUnitParams, ProcessorParams, UsbParams,
};
use rfn::mc::{verify_plain, PlainOptions, PlainVerdict};
use rfn::netlist::{Coi, GateOp, Netlist, Property, SignalId};

/// Runs both engines on one property and checks the verdicts line up.
/// Returns `true` when the cross-check exercised a falsification.
fn agree(n: &Netlist, p: &Property, max_depth: usize) -> bool {
    let plain = verify_plain(n, p, &PlainOptions::default()).expect("plain runs");
    let bmc = verify_bmc(n, p, &BmcOptions::default().with_max_depth(max_depth))
        .expect("bmc runs and its counterexamples replay");
    match plain.verdict {
        PlainVerdict::Falsified { depth } if depth <= max_depth => {
            assert_eq!(
                bmc.verdict,
                BmcVerdict::Falsified { depth },
                "`{}`: plain falsifies at depth {depth}, BMC disagrees",
                p.name
            );
            let trace = bmc.trace.as_ref().expect("falsification carries a trace");
            assert_eq!(trace.num_cycles(), depth + 1);
            assert!(
                validate_trace(n, p, trace).unwrap(),
                "`{}`: BMC trace does not replay concretely",
                p.name
            );
            true
        }
        PlainVerdict::Proved => {
            assert_eq!(
                bmc.verdict,
                BmcVerdict::BoundedSafe { depth: max_depth },
                "`{}`: proved property, but BMC found a counterexample",
                p.name
            );
            false
        }
        // Deeper than the BMC bound or out of capacity: nothing to compare.
        _ => false,
    }
}

/// Properties on the first coverage-set signals of a Table 2 design, both
/// polarities — some falsifiable shallowly, some safe, which is exactly the
/// mix the cross-check wants.
fn coverage_properties(design: &Design, set_name: &str, signals: usize) -> Vec<Property> {
    let set = design.coverage_set(set_name).expect("set exists");
    set.signals
        .iter()
        .take(signals)
        .enumerate()
        .flat_map(|(i, &sig)| {
            [
                Property::never_value(format!("{set_name}_{i}_high"), sig, true),
                Property::never_value(format!("{set_name}_{i}_low"), sig, false),
            ]
        })
        .collect()
}

#[test]
fn bmc_agrees_with_plain_on_the_processor_module() {
    let design = processor_module(&ProcessorParams {
        width: 4,
        regfile_words: 2,
        store_entries: 2,
        cache_lines: 2,
        pipe_stages: 2,
        multipliers: 1,
        stall_threshold: 4,
    });
    let n = &design.netlist;
    // The COI coupler deliberately drags the whole datapath into the
    // watchdog cones, so the full properties sit beyond exact plain MC
    // (that is the paper's point — see `table1_plain_mc_fails_all_five`).
    // Cross-check the engines on control registers with small cones, where
    // plain MC stays exact.
    let mut falsified = 0;
    let mut checked = 0;
    for &reg in n.registers() {
        if checked >= 3 {
            break;
        }
        if Coi::of(n, [reg]).num_registers() > 20 {
            continue;
        }
        checked += 1;
        let name = n.signal_name(reg);
        for value in [false, true] {
            let p = Property::never_value(format!("{name}_{value}"), reg, value);
            if agree(n, &p, 16) {
                falsified += 1;
            }
        }
    }
    assert!(checked > 0, "no small-cone register to cross-check on");
    assert!(falsified > 0, "expected a shallow falsification");

    // The real falsifiable property, checked by BMC alone: the stall
    // watchdog must fire a few cycles after boot, and the counterexample
    // must replay concretely (`verify_bmc` re-validates internally too).
    let error_flag = design.property("error_flag").unwrap();
    let bmc = verify_bmc(n, error_flag, &BmcOptions::default().with_max_depth(24))
        .expect("bmc runs and its counterexample replays");
    let BmcVerdict::Falsified { depth } = bmc.verdict else {
        panic!("error_flag must be falsified, got {:?}", bmc.verdict);
    };
    assert!(depth >= 4, "cannot fire before the stall threshold");
    let trace = bmc.trace.as_ref().expect("falsification carries a trace");
    assert!(validate_trace(n, error_flag, trace).unwrap());
}

#[test]
fn bmc_agrees_with_plain_on_the_fifo_controller() {
    let design = fifo_controller(&FifoParams {
        depth: 4,
        data_width: 2,
        data_stages: 1,
        inject_half_flag_bug: true,
    });
    let mut falsified = 0;
    for p in &design.properties {
        if agree(&design.netlist, p, 24) {
            falsified += 1;
        }
    }
    assert!(falsified > 0, "expected the injected flag bug to be found");
}

#[test]
fn bmc_agrees_with_plain_on_the_integer_unit() {
    let design = integer_unit(&IntegerUnitParams {
        stages: 5,
        counters_per_stage: 1,
        counter_width: 2,
        data_width: 2,
    });
    let mut falsified = 0;
    for p in coverage_properties(&design, "IU1", 2) {
        if agree(&design.netlist, &p, 16) {
            falsified += 1;
        }
    }
    assert!(falsified > 0, "expected a shallow falsification on the IU");
}

#[test]
fn bmc_agrees_with_plain_on_the_usb_controller() {
    let design = usb_controller(&UsbParams {
        endpoints: 3,
        nak_width: 2,
    });
    let mut falsified = 0;
    for p in coverage_properties(&design, "USB1", 2) {
        if agree(&design.netlist, &p, 16) {
            falsified += 1;
        }
    }
    assert!(falsified > 0, "expected a shallow falsification on the USB");
}

/// Random layered sequential netlist with a sticky watchdog register, the
/// same shape the RFN soundness suite uses.
fn arb_design(
    n_inputs: usize,
    n_regs: usize,
    n_gates: usize,
) -> impl Strategy<Value = (Netlist, Property)> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
        GateOp::Mux,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts, any::<u32>()).prop_map(move |(gates, nexts, watch_pick)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b, c)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fc = pool[c as usize % pool.len()];
            let fanins: Vec<SignalId> = match op {
                GateOp::Not => vec![fa],
                GateOp::Mux => vec![fa, fb, fc],
                _ => vec![fa, fb],
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        let watch = pool[watch_pick as usize % pool.len()];
        let w = n.add_register("w", Some(false));
        let w_next = n.add_gate("w_next", GateOp::Or, &[w, watch]);
        n.set_register_next(w, w_next).unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random designs, BMC's verdict at its bound agrees with the exact
    /// model checker's falsification depth, and every BMC counterexample
    /// replays concretely.
    #[test]
    fn bmc_agrees_with_plain_on_random_designs(
        (n, p) in arb_design(2, 5, 14),
    ) {
        agree(&n, &p, 32);
    }
}
