//! Integration tests asserting the *shape* of the paper's experimental
//! results on quick-scale versions of the benchmark designs (the full-scale
//! runs live in the `rfn-bench` binaries; see `EXPERIMENTS.md`).

use std::time::Duration;

use rfn::core::{
    analyze_coverage, bfs_coverage, validate_trace, CoverageOptions, Rfn, RfnOptions, RfnOutcome,
};
use rfn::designs::{
    fifo_controller, integer_unit, processor_module, usb_controller, FifoParams, IntegerUnitParams,
    ProcessorParams, UsbParams,
};
use rfn::mc::{verify_plain, PlainOptions, PlainVerdict, ReachOptions};

fn quick_processor() -> ProcessorParams {
    ProcessorParams {
        width: 16,
        regfile_words: 8,
        store_entries: 4,
        cache_lines: 4,
        pipe_stages: 2,
        multipliers: 2,
        stall_threshold: 27,
    }
}

fn quick_fifo() -> FifoParams {
    FifoParams {
        depth: 16,
        data_width: 8,
        data_stages: 3,
        inject_half_flag_bug: false,
    }
}

fn rfn_options() -> RfnOptions {
    RfnOptions::default().with_time_limit(Duration::from_secs(120))
}

/// Table 1, rows 1–2: `mutex` proved, `error_flag` falsified with a
/// ≈30-cycle trace, both with abstractions far below the COI.
#[test]
fn table1_processor_rows() {
    let design = processor_module(&quick_processor());

    let mutex = design.property("mutex").unwrap();
    let outcome = Rfn::new(&design.netlist, mutex, rfn_options())
        .unwrap()
        .run()
        .unwrap();
    let RfnOutcome::Proved { stats } = outcome else {
        panic!("mutex must be proved, got {outcome:?}");
    };
    assert!(
        stats.coi_registers > 400,
        "COI too small: {}",
        stats.coi_registers
    );
    assert!(
        stats.abstract_registers * 10 < stats.coi_registers,
        "abstraction ({}) not an order of magnitude below the COI ({})",
        stats.abstract_registers,
        stats.coi_registers
    );

    let error_flag = design.property("error_flag").unwrap();
    let outcome = Rfn::new(&design.netlist, error_flag, rfn_options())
        .unwrap()
        .run()
        .unwrap();
    let RfnOutcome::Falsified { trace, stats } = outcome else {
        panic!("error_flag must be falsified, got {outcome:?}");
    };
    assert!(validate_trace(&design.netlist, error_flag, &trace).unwrap());
    // The paper reports a 30-cycle violation; ours is 31 (boot + 28 stalls +
    // latch). Accept the 28..40 band so parameter tweaks don't break CI.
    assert!(
        (28..=40).contains(&trace.num_cycles()),
        "unexpected trace length {}",
        trace.num_cycles()
    );
    assert!(stats.abstract_registers * 10 < stats.coi_registers);
}

/// Table 1, rows 3–5: the three FIFO flag-consistency properties are proved.
#[test]
fn table1_fifo_rows() {
    let design = fifo_controller(&quick_fifo());
    for name in ["psh_hf", "psh_af", "psh_full"] {
        let p = design.property(name).unwrap();
        let outcome = Rfn::new(&design.netlist, p, rfn_options())
            .unwrap()
            .run()
            .unwrap();
        assert!(
            outcome.is_proved(),
            "{name} must be proved, got {outcome:?}"
        );
        let stats = outcome.stats();
        assert!(
            stats.abstract_registers < stats.coi_registers / 2,
            "{name}: abstraction {} vs COI {}",
            stats.abstract_registers,
            stats.coi_registers
        );
    }
}

/// Table 1's comparison column: plain symbolic MC with COI reduction runs
/// out of capacity on every property (the multiplier datapaths blow up its
/// transition relation).
#[test]
fn table1_plain_mc_fails_all_five() {
    let processor = processor_module(&quick_processor());
    let fifo = fifo_controller(&quick_fifo());
    let opts = PlainOptions::default()
        .with_node_limit(50_000)
        .with_time_limit(Duration::from_secs(30));
    for (design, name) in [
        (&processor, "mutex"),
        (&processor, "error_flag"),
        (&fifo, "psh_hf"),
        (&fifo, "psh_af"),
        (&fifo, "psh_full"),
    ] {
        let p = design.property(name).unwrap();
        let report = verify_plain(&design.netlist, p, &opts).unwrap();
        assert_eq!(
            report.verdict,
            PlainVerdict::OutOfCapacity,
            "plain MC unexpectedly handled {name}"
        );
    }
}

/// Table 2's shape: RFN matches or beats BFS on every coverage set, and both
/// find a substantial number of unreachable coverage states.
#[test]
fn table2_rfn_beats_or_matches_bfs() {
    let iu = integer_unit(&IntegerUnitParams {
        stages: 5,
        counters_per_stage: 1,
        counter_width: 5,
        data_width: 4,
    });
    let usb = usb_controller(&UsbParams {
        endpoints: 3,
        nak_width: 6,
    });
    let options = CoverageOptions::default().with_time_limit(Duration::from_secs(120));
    for (design, sets) in [(&iu, &iu.coverage_sets), (&usb, &usb.coverage_sets)] {
        for set in sets {
            if set.signals.len() > 12 {
                continue; // USB2's 2M states are exercised by the bench binary
            }
            if !matches!(set.name.as_str(), "IU1" | "IU5" | "USB1") {
                continue; // keep the debug-mode test suite affordable
            }
            let rfn = analyze_coverage(&design.netlist, set, &options).unwrap();
            let bfs = bfs_coverage(
                &design.netlist,
                set,
                60,
                4_000_000,
                &ReachOptions::default(),
            )
            .unwrap();
            assert!(
                rfn.unreachable >= bfs.unreachable,
                "{}: RFN {} < BFS {}",
                set.name,
                rfn.unreachable,
                bfs.unreachable
            );
            assert!(
                rfn.unreachable > 0,
                "{}: nothing proven unreachable",
                set.name
            );
            // Everything classified or the budget was hit; never misclassified.
            assert_eq!(
                rfn.unreachable + rfn.reachable + rfn.unresolved,
                set.num_states()
            );
        }
    }
}

/// The Table 2 starvation effect: with the paper-scale junk counters, the
/// BFS ball misses the configuration chain and proves strictly less than
/// RFN.
#[test]
fn table2_bfs_budget_starvation() {
    let iu = integer_unit(&IntegerUnitParams {
        stages: 5,
        counters_per_stage: 2,
        counter_width: 5,
        data_width: 4,
    });
    let set = iu.coverage_set("IU1").unwrap();
    let options = CoverageOptions::default().with_time_limit(Duration::from_secs(120));
    let rfn = analyze_coverage(&iu.netlist, set, &options).unwrap();
    let bfs = bfs_coverage(&iu.netlist, set, 60, 4_000_000, &ReachOptions::default()).unwrap();
    assert!(
        rfn.unreachable > bfs.unreachable,
        "expected strict win: RFN {} vs BFS {}",
        rfn.unreachable,
        bfs.unreachable
    );
}

/// Fault injection: an off-by-one bug in the half-full flag makes `psh_hf`
/// falsifiable; RFN must find and validate the counterexample while still
/// proving the untouched `psh_af` and `psh_full` properties.
#[test]
fn fifo_injected_bug_is_found() {
    let design = fifo_controller(&FifoParams {
        depth: 16,
        data_width: 8,
        data_stages: 3,
        inject_half_flag_bug: true,
    });
    let psh_hf = design.property("psh_hf").unwrap();
    let outcome = Rfn::new(&design.netlist, psh_hf, rfn_options())
        .unwrap()
        .run()
        .unwrap();
    let RfnOutcome::Falsified { trace, .. } = outcome else {
        panic!("the injected bug must be found, got {outcome:?}");
    };
    assert!(validate_trace(&design.netlist, psh_hf, &trace).unwrap());
    // The bug shows at occupancy depth/2 - 1 = 7: seven pushes, a flag
    // latch and a watchdog latch — at least 9 trace states.
    assert!(
        trace.num_cycles() >= 9,
        "trace too short: {}",
        trace.num_cycles()
    );

    for name in ["psh_af", "psh_full"] {
        let p = design.property(name).unwrap();
        let outcome = Rfn::new(&design.netlist, p, rfn_options())
            .unwrap()
            .run()
            .unwrap();
        assert!(
            outcome.is_proved(),
            "{name} must still hold, got {outcome:?}"
        );
    }
}
