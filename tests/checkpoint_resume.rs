//! Checkpoint/resume roundtrip: an interrupted run continued from its
//! snapshot must reproduce the uninterrupted run exactly — same verdict,
//! same total iteration count, same refinement history, same error-trace
//! depth — on quick-scale versions of all four benchmark designs.

use std::path::{Path, PathBuf};

use rfn::core::{LoopCheckpoint, Rfn, RfnOptions, RfnOutcome};
use rfn::designs::{
    fifo_controller, integer_unit, processor_module, usb_controller, Design, FifoParams,
    IntegerUnitParams, ProcessorParams, UsbParams,
};
use rfn::netlist::Property;

fn quick_processor() -> Design {
    processor_module(&ProcessorParams {
        width: 16,
        regfile_words: 8,
        store_entries: 4,
        cache_lines: 4,
        pipe_stages: 2,
        multipliers: 2,
        stall_threshold: 27,
    })
}

fn quick_fifo() -> Design {
    fifo_controller(&FifoParams {
        depth: 16,
        data_width: 8,
        data_stages: 3,
        inject_half_flag_bug: false,
    })
}

fn quick_integer_unit() -> Design {
    integer_unit(&IntegerUnitParams {
        stages: 5,
        counters_per_stage: 1,
        counter_width: 5,
        data_width: 4,
    })
}

fn quick_usb() -> Design {
    usb_controller(&UsbParams {
        endpoints: 3,
        nak_width: 6,
    })
}

/// A watchdog property for the coverage-oriented designs, which ship
/// without Table 1 properties: watch the first coverage register.
fn watchdog(design: &Design) -> Property {
    let sig = design.coverage_sets[0].signals[0];
    Property::never(&design.netlist, "ckpt_watch", sig)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfn-resume-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Key facts of one outcome, for equality across the interruption.
#[derive(Debug, PartialEq, Eq)]
struct Summary {
    verdict: &'static str,
    iterations: usize,
    abstract_registers: usize,
    refinement_sizes: Vec<usize>,
    trace_depth: Option<usize>,
}

fn summarize(outcome: &RfnOutcome) -> Summary {
    let (verdict, trace_depth) = match outcome {
        RfnOutcome::Proved { .. } => ("proved", None),
        RfnOutcome::Falsified { trace, .. } => ("falsified", Some(trace.num_cycles())),
        RfnOutcome::Inconclusive { .. } => ("inconclusive", None),
    };
    let stats = outcome.stats();
    Summary {
        verdict,
        iterations: stats.iterations,
        abstract_registers: stats.abstract_registers,
        refinement_sizes: stats.refinement_sizes.clone(),
        trace_depth,
    }
}

/// Runs uninterrupted, then interrupted-at-one-iteration + resumed, and
/// asserts both paths reach the identical outcome.
fn roundtrip(design: &Design, property: &Property, max_iterations: usize, dir: &Path) {
    let opts = || RfnOptions::default().with_max_iterations(max_iterations);

    let full = Rfn::new(&design.netlist, property, opts())
        .unwrap()
        .run()
        .unwrap();

    let interrupted = Rfn::new(
        &design.netlist,
        property,
        opts().with_max_iterations(1).with_checkpoint_dir(dir),
    )
    .unwrap()
    .run()
    .unwrap();

    let ckpt_path = LoopCheckpoint::path_for(dir, &property.name);
    if matches!(interrupted, RfnOutcome::Inconclusive { .. }) && full.stats().iterations > 1 {
        // The interrupted run completed its first refinement, so a snapshot
        // must be on disk — and it must parse and name this design.
        let ckpt = LoopCheckpoint::load(&ckpt_path).expect("snapshot written and readable");
        assert_eq!(ckpt.design, design.netlist.name());
        assert_eq!(ckpt.next_iteration, 1);
    }

    let resumed = Rfn::new(
        &design.netlist,
        property,
        opts().with_checkpoint_dir(dir).with_resume(true),
    )
    .unwrap()
    .run()
    .unwrap();

    assert_eq!(
        summarize(&full),
        summarize(&resumed),
        "resumed run diverged on {}/{}",
        design.netlist.name(),
        property.name
    );
}

#[test]
fn processor_roundtrips_both_properties() {
    let design = quick_processor();
    for name in ["mutex", "error_flag"] {
        let dir = scratch_dir(&format!("proc-{name}"));
        let property = design.property(name).unwrap().clone();
        roundtrip(&design, &property, 64, &dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fifo_roundtrips() {
    let design = quick_fifo();
    let dir = scratch_dir("fifo");
    let property = design.property("psh_hf").unwrap().clone();
    roundtrip(&design, &property, 64, &dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn integer_unit_roundtrips() {
    let design = quick_integer_unit();
    let dir = scratch_dir("iu");
    let property = watchdog(&design);
    roundtrip(&design, &property, 6, &dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usb_roundtrips() {
    let design = quick_usb();
    let dir = scratch_dir("usb");
    let property = watchdog(&design);
    roundtrip(&design, &property, 6, &dir);
    std::fs::remove_dir_all(&dir).ok();
}

/// A budget that is already exhausted (cancelled) must come back as a
/// structured `Inconclusive` within the cooperative-cancellation latency
/// bound on every design — no engine may run away.
#[test]
fn cancelled_budget_returns_promptly_on_all_designs() {
    use rfn::core::Budget;
    use std::time::{Duration, Instant};

    let designs = [
        quick_processor(),
        quick_fifo(),
        quick_integer_unit(),
        quick_usb(),
    ];
    for design in &designs {
        let property = match design.properties.first() {
            Some(p) => p.clone(),
            None => watchdog(design),
        };
        let budget = Budget::unlimited();
        budget.cancel();
        let start = Instant::now();
        let outcome = Rfn::new(
            &design.netlist,
            &property,
            RfnOptions::default().with_budget(budget),
        )
        .unwrap()
        .run()
        .unwrap();
        let wall = start.elapsed();
        let RfnOutcome::Inconclusive { reason, .. } = &outcome else {
            panic!(
                "{}: expected Inconclusive on a cancelled budget, got {outcome:?}",
                design.netlist.name()
            );
        };
        assert!(
            reason.contains("cancelled"),
            "{}: reason does not name cancellation: {reason}",
            design.netlist.name()
        );
        assert!(
            wall <= Duration::from_millis(500),
            "{}: cancelled run took {}ms",
            design.netlist.name(),
            wall.as_millis()
        );
    }
}

#[test]
fn resume_rejects_foreign_snapshots() {
    let proc_design = quick_processor();
    let fifo_design = quick_fifo();
    let dir = scratch_dir("foreign");

    // Interrupt a processor run so a snapshot exists under this name...
    let property = proc_design.property("error_flag").unwrap().clone();
    Rfn::new(
        &proc_design.netlist,
        &property,
        RfnOptions::default()
            .with_max_iterations(1)
            .with_checkpoint_dir(&dir),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(LoopCheckpoint::path_for(&dir, "error_flag").exists());

    // ...then try to resume it on a different design.
    let foreign = Property::never(
        &fifo_design.netlist,
        "error_flag",
        fifo_design.netlist.registers()[0],
    );
    let err = Rfn::new(
        &fifo_design.netlist,
        &foreign,
        RfnOptions::default()
            .with_checkpoint_dir(&dir)
            .with_resume(true),
    )
    .unwrap()
    .run()
    .unwrap_err();
    assert!(
        err.to_string().contains("checkpoint"),
        "expected a checkpoint error, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
