//! End-to-end checks for the file frontends: every committed AIGER/DIMACS
//! corpus file loads through [`DesignSource`] and verifies to its known
//! verdict under every engine lane, and the CLI drives the same files
//! through `verify --engine <lane>`.
//!
//! The corpus under `tests/data/` is hand-written with hand-computed
//! expected verdicts (see the comment sections inside the files), so these
//! tests pin the whole chain: parse → netlist → property extraction →
//! engine → verdict/depth → exit code.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use rfn::core::{DesignSource, EngineKind, LoadedDesign, Verdict, VerifySession};
use rfn::netlist::{write_aiger_binary, NetKind};

/// What a corpus property must verify to.
#[derive(Clone, Copy, Debug)]
enum Expect {
    /// Safe at every depth.
    Proved,
    /// Falsified with this minimal violating cycle index.
    FalsifiedAt(usize),
}

/// The committed corpus and its hand-computed verdicts, in property order.
const CORPUS: &[(&str, &[(&str, Expect)])] = &[
    ("toggle.aag", &[("high", Expect::FalsifiedAt(1))]),
    ("stuck.aag", &[("stuck_high", Expect::Proved)]),
    ("latch_or.aag", &[("went_high", Expect::FalsifiedAt(1))]),
    ("counter3_bad7.aag", &[("at_seven", Expect::FalsifiedAt(7))]),
    (
        "two_props.aag",
        &[
            ("never_fires", Expect::Proved),
            ("toggles_high", Expect::FalsifiedAt(1)),
        ],
    ),
    ("outputs_as_bad.aag", &[("stuck_out", Expect::Proved)]),
    ("sat2.cnf", &[("sat", Expect::FalsifiedAt(0))]),
    ("unsat1.cnf", &[("sat", Expect::Proved)]),
];

fn data_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(file)
}

fn load(file: &str) -> LoadedDesign {
    let spec = data_path(file);
    DesignSource::parse(spec.to_str().unwrap())
        .and_then(|s| s.load())
        .unwrap_or_else(|e| panic!("loading {file}: {e}"))
}

/// The violating cycle index a falsified verdict reports: plain/BMC report
/// it directly; the RFN lane carries a concrete trace whose last cycle is
/// the violation.
fn falsified_depth(verdict: &Verdict) -> Option<usize> {
    match verdict {
        Verdict::Falsified { trace, depth } => {
            Some(trace.as_ref().map_or(*depth, |t| t.num_cycles() - 1))
        }
        _ => None,
    }
}

fn check_engine(file: &str, loaded: &LoadedDesign, engine: EngineKind) {
    let report = VerifySession::new(&loaded.design.netlist)
        .design_identity(&loaded.identity)
        .engine(engine)
        .properties(loaded.design.properties.clone())
        .time_limit(Duration::from_secs(60))
        .run()
        .unwrap_or_else(|e| panic!("{file} under {engine:?}: {e}"));
    let expects = CORPUS
        .iter()
        .find(|(f, _)| *f == file)
        .map(|(_, e)| *e)
        .unwrap();
    assert_eq!(
        report.results.len(),
        expects.len(),
        "{file}: property count"
    );
    for (result, &(name, expect)) in report.results.iter().zip(expects) {
        assert_eq!(result.property.name, name, "{file}: property order");
        let ctx = format!("{file}/{name} under {engine:?}");
        match expect {
            Expect::FalsifiedAt(want) => {
                let got = falsified_depth(&result.verdict).unwrap_or_else(|| {
                    panic!("{ctx}: expected falsified, got {:?}", result.verdict)
                });
                assert_eq!(got, want, "{ctx}: counterexample depth");
            }
            Expect::Proved => match (&result.verdict, engine) {
                (Verdict::Proved, _) => {}
                // The BMC lane alone cannot conclude unbounded safety; a
                // bounded-safe sweep surfaces as inconclusive.
                (Verdict::Inconclusive { .. }, EngineKind::Bmc) => {}
                (other, _) => panic!("{ctx}: expected proved, got {other:?}"),
            },
        }
    }
}

#[test]
fn corpus_verifies_under_every_engine() {
    for (file, _) in CORPUS {
        let loaded = load(file);
        for engine in [
            EngineKind::Rfn,
            EngineKind::PlainMc,
            EngineKind::Bmc,
            EngineKind::Race,
        ] {
            check_engine(file, &loaded, engine);
        }
    }
}

#[test]
fn corpus_identities_are_content_hashes() {
    for (file, _) in CORPUS {
        let loaded = load(file);
        let canonical = loaded.identity.canonical.clone();
        assert!(
            canonical.starts_with("file:"),
            "{file}: canonical identity `{canonical}` should be content-addressed"
        );
        // Stable across reloads, and the design is named after the stem.
        assert_eq!(load(file).identity.canonical, canonical, "{file}");
        let stem = file.split('.').next().unwrap();
        assert_eq!(loaded.design.netlist.name(), stem, "{file}: design name");
    }
}

#[test]
fn binary_aig_agrees_with_ascii() {
    for (file, _) in CORPUS.iter().filter(|(f, _)| f.ends_with(".aag")) {
        let loaded = load(file);
        let bytes = write_aiger_binary(&loaded.design.netlist, &loaded.design.properties).unwrap();
        let path = std::env::temp_dir().join(format!(
            "rfn_frontends_{}_{}.aig",
            std::process::id(),
            file.replace('.', "_")
        ));
        std::fs::write(&path, bytes).unwrap();
        let reloaded = DesignSource::parse(path.to_str().unwrap())
            .and_then(|s| s.load())
            .unwrap_or_else(|e| panic!("{file} as binary: {e}"));
        std::fs::remove_file(&path).ok();
        assert_eq!(
            reloaded.design.properties.len(),
            loaded.design.properties.len(),
            "{file}: binary property count"
        );
        // The binary body re-verifies to the same verdicts under the racing
        // portfolio (the lowered AIG can differ structurally from the ascii
        // parse only through Not-gate sharing, never semantically).
        check_engine(file, &reloaded, EngineKind::Race);
    }
}

#[test]
fn dimacs_netlists_are_combinational() {
    for file in ["sat2.cnf", "unsat1.cnf"] {
        let loaded = load(file);
        let n = &loaded.design.netlist;
        assert_eq!(
            n.registers().len(),
            0,
            "{file}: CNF encodings are stateless"
        );
        assert!(
            n.signals()
                .any(|s| !matches!(n.kind(s), NetKind::Input | NetKind::Const(_))),
            "{file}: clauses materialize gates"
        );
    }
}

fn rfn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfn"))
}

#[test]
fn cli_verifies_committed_aiger_under_every_engine() {
    // Falsified design: exit code 1 under every lane, with the hand-computed
    // depth visible in the report.
    for engine in ["rfn", "plain", "bmc", "race"] {
        let out = rfn()
            .args(["verify"])
            .arg(data_path("counter3_bad7.aag"))
            .args(["--engine", engine])
            .output()
            .expect("spawn rfn");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "engine {engine}: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("FALSIFIED `at_seven`"),
            "engine {engine}: {stdout}"
        );
    }
    // Proved design: exit 0 where the lane can prove, 3 (inconclusive) for
    // the bounded lane.
    for (engine, code) in [("rfn", 0), ("plain", 0), ("bmc", 3), ("race", 0)] {
        let out = rfn()
            .args(["verify"])
            .arg(data_path("stuck.aag"))
            .args(["--engine", engine])
            .output()
            .expect("spawn rfn");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(code),
            "engine {engine}: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn cli_info_reports_file_identity_and_properties() {
    let out = rfn()
        .args(["info"])
        .arg(data_path("two_props.aag"))
        .output()
        .expect("spawn rfn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("file:"), "{stdout}");
    assert!(stdout.contains("never_fires"), "{stdout}");
    assert!(stdout.contains("toggles_high"), "{stdout}");
}

#[test]
fn cli_rejects_malformed_aiger_with_location() {
    let path = std::env::temp_dir().join(format!("rfn_frontends_bad_{}.aag", std::process::id()));
    std::fs::write(&path, "aag 1 1 0 0 0\nxyz\n").unwrap();
    let out = rfn()
        .args(["verify"])
        .arg(&path)
        .args(["--engine", "race"])
        .output()
        .expect("spawn rfn");
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}
