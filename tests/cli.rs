//! Integration tests for the `rfn` command-line tool.

use std::io::Write;
use std::process::Command;

const RING: &str = "\
design token_ring
input want0
input want1
reg tok0 1 tok1
reg tok1 0 tok0
gate tx0_n and want0 tok0
gate tx1_n and want1 tok1
reg tx0 0 tx0_n
reg tx1 0 tx1_n
gate clash and tx0 tx1
gate w_next or w clash
reg w 0 w_next
output clash clash
";

/// A buggy ring where both stations can hold the token.
const BROKEN_RING: &str = "\
design broken_ring
input want0
input want1
reg tok0 1 tok1
reg tok1 1 tok0
gate tx0_n and want0 tok0
gate tx1_n and want1 tok1
reg tx0 0 tx0_n
reg tx1 0 tx1_n
gate clash and tx0 tx1
gate w_next or w clash
reg w 0 w_next
";

fn write_netlist(name: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rfn_cli_test_{name}_{}.rtl", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(text.as_bytes()).expect("write netlist");
    path
}

fn rfn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfn"))
}

#[test]
fn info_prints_coi() {
    let path = write_netlist("info", RING);
    let out = rfn().arg("info").arg(&path).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("5 registers"), "got: {stdout}");
    assert!(stdout.contains("COI 4 registers"), "got: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn verify_proves_and_exits_zero() {
    let path = write_netlist("verify_ok", RING);
    let out = rfn()
        .args(["verify"])
        .arg(&path)
        .args(["--watch", "w"])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PROVED"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn verify_falsifies_and_exits_one() {
    let path = write_netlist("verify_bad", BROKEN_RING);
    let out = rfn()
        .args(["verify"])
        .arg(&path)
        .args(["--watch", "w", "--name", "mutex"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FALSIFIED `mutex`"), "got: {stdout}");
    assert!(stdout.contains("cycle 0"), "trace missing: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn coverage_reports_counts() {
    let path = write_netlist("coverage", RING);
    let out = rfn()
        .args(["coverage"])
        .arg(&path)
        .args(["--signals", "tok0,tok1", "--bfs", "60"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One-hot token: states 00 and 11 are unreachable.
    assert!(stdout.contains("4 states | 2 unreachable"), "got: {stdout}");
    assert!(stdout.contains("BFS(60):  2 unreachable"), "got: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_usage_exits_two() {
    let out = rfn().arg("verify").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = rfn()
        .args(["frobnicate", "/nonexistent"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_signal_is_reported() {
    let path = write_netlist("unknown_sig", RING);
    let out = rfn()
        .args(["verify"])
        .arg(&path)
        .args(["--watch", "nonexistent"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nonexistent"));
    let _ = std::fs::remove_file(path);
}
