//! Property-based soundness tests for unreachable-coverage-state analysis:
//! RFN's classifications against explicit-state enumeration on random
//! designs.

use std::collections::HashSet;

use proptest::prelude::*;
use rfn::core::{analyze_coverage, CoverageOptions};
use rfn::netlist::{CoverageSet, Cube, GateOp, Netlist, SignalId};
use rfn::sim::Simulator;

fn arb_netlist(n_inputs: usize, n_regs: usize, n_gates: usize) -> impl Strategy<Value = Netlist> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts).prop_map(move |(gates, nexts)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        n
    })
}

/// Explicit-state BFS; returns the set of reachable coverage states over the
/// given signals.
fn explicit_coverage(n: &Netlist, cov: &[SignalId]) -> HashSet<u64> {
    let regs = n.registers().to_vec();
    let inputs = n.inputs().to_vec();
    let encode = |sim: &Simulator| -> u32 {
        regs.iter().enumerate().fold(0u32, |acc, (k, &r)| {
            acc | (u32::from(sim.value(r).to_bool().expect("binary")) << k)
        })
    };
    let cov_of = |sim: &Simulator| -> u64 {
        cov.iter().enumerate().fold(0u64, |acc, (k, &s)| {
            acc | (u64::from(sim.value(s).to_bool().expect("binary")) << k)
        })
    };
    let mut sim = Simulator::new(n).unwrap();
    sim.reset();
    let start = encode(&sim);
    let mut seen: HashSet<u32> = [start].into_iter().collect();
    let mut cov_seen: HashSet<u64> = [cov_of(&sim)].into_iter().collect();
    let mut frontier = vec![start];
    while let Some(state) = frontier.pop() {
        for ibits in 0..1u32 << inputs.len() {
            for (k, &r) in regs.iter().enumerate() {
                sim.set(r, rfn::sim::Tv::from(state & (1 << k) != 0));
            }
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, ibits & (1 << k) != 0))
                .collect();
            sim.step(&cube);
            let next = encode(&sim);
            cov_seen.insert(cov_of(&sim));
            if seen.insert(next) {
                frontier.push(next);
            }
        }
    }
    cov_seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every state RFN declares unreachable is truly unreachable, every
    /// state it declares reachable is truly reachable, and when nothing is
    /// left unresolved the classification is exact.
    #[test]
    fn coverage_classification_is_sound(
        n in arb_netlist(2, 4, 12),
        picks in any::<u8>(),
    ) {
        let regs = n.registers();
        let a = regs[picks as usize % regs.len()];
        let b = regs[(picks as usize + 1) % regs.len()];
        let set = CoverageSet::new("t", [a, b]);
        let report = analyze_coverage(&n, &set, &CoverageOptions::default())
            .expect("analysis runs");
        let truth = explicit_coverage(&n, &set.signals);
        // Aggregate soundness: RFN's unreachable count can never exceed the
        // true count, and reachable can never exceed the true reachable.
        let true_unreachable = set.num_states() - truth.len() as u64;
        prop_assert!(report.unreachable <= true_unreachable,
            "claimed more unreachable ({}) than the truth ({})",
            report.unreachable, true_unreachable);
        prop_assert!(report.reachable <= truth.len() as u64,
            "claimed more reachable ({}) than the truth ({})",
            report.reachable, truth.len());
        // Completeness: everything classified means exact agreement.
        if report.unresolved == 0 {
            prop_assert_eq!(report.unreachable, true_unreachable);
            prop_assert_eq!(report.reachable, truth.len() as u64);
        }
    }
}
