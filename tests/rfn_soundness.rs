//! Property-based soundness tests: the full RFN loop against the exact
//! plain symbolic model checker on random sequential designs.
//!
//! This is the repository's strongest correctness check — every engine
//! (netlist, BDD, simulation, ATPG, model checking, hybrid trace
//! reconstruction, refinement) participates in every case.

use proptest::prelude::*;
use rfn::core::{validate_trace, Rfn, RfnOptions, RfnOutcome};
use rfn::mc::{verify_plain, PlainOptions, PlainVerdict};
use rfn::netlist::{GateOp, Netlist, Property, SignalId};

/// Random layered sequential netlist with a sticky watchdog register
/// observing a random internal signal.
fn arb_design(
    n_inputs: usize,
    n_regs: usize,
    n_gates: usize,
) -> impl Strategy<Value = (Netlist, Property)> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
        GateOp::Mux,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts, any::<u32>()).prop_map(move |(gates, nexts, watch_pick)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b, c)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fc = pool[c as usize % pool.len()];
            let fanins: Vec<SignalId> = match op {
                GateOp::Not => vec![fa],
                GateOp::Mux => vec![fa, fb, fc],
                _ => vec![fa, fb],
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        // Sticky watchdog on a random signal.
        let watch = pool[watch_pick as usize % pool.len()];
        let w = n.add_register("w", Some(false));
        let w_next = n.add_gate("w_next", GateOp::Or, &[w, watch]);
        n.set_register_next(w, w_next).unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RFN's verdict always agrees with exact symbolic model checking, and
    /// every falsification trace replays concretely.
    #[test]
    fn rfn_agrees_with_exact_model_checking(
        (n, p) in arb_design(2, 5, 16),
    ) {
        let rfn_outcome = Rfn::new(&n, &p, RfnOptions::default())
            .expect("valid")
            .run()
            .expect("structural soundness");
        let plain = verify_plain(&n, &p, &PlainOptions::default()).expect("plain runs");
        match (&rfn_outcome, plain.verdict) {
            (RfnOutcome::Proved { .. }, PlainVerdict::Proved) => {}
            (RfnOutcome::Falsified { trace, .. }, PlainVerdict::Falsified { depth }) => {
                prop_assert!(validate_trace(&n, &p, trace).unwrap(), "trace does not replay");
                prop_assert!(trace.num_cycles() > depth);
            }
            (rfn_outcome, plain) => {
                prop_assert!(
                    false,
                    "verdicts disagree: RFN {rfn_outcome:?} vs plain {plain:?}"
                );
            }
        }
    }

    /// The final abstraction never exceeds the property's cone of influence.
    #[test]
    fn abstraction_stays_within_coi(
        (n, p) in arb_design(2, 6, 14),
    ) {
        let outcome = Rfn::new(&n, &p, RfnOptions::default())
            .expect("valid")
            .run()
            .expect("runs");
        let stats = outcome.stats();
        prop_assert!(stats.abstract_registers <= stats.coi_registers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The multi-trace extension (paper Section 5 future work) never changes
    /// a verdict: with several abstract traces guiding Step 3, RFN still
    /// agrees with exact model checking.
    #[test]
    fn multi_trace_guidance_preserves_verdicts(
        (n, p) in arb_design(2, 5, 14),
    ) {
        let options = RfnOptions {
            max_abstract_traces: 3,
            ..RfnOptions::default()
        };
        let outcome = Rfn::new(&n, &p, options)
            .expect("valid")
            .run()
            .expect("runs");
        let plain = verify_plain(&n, &p, &PlainOptions::default()).expect("plain runs");
        match (&outcome, plain.verdict) {
            (RfnOutcome::Proved { .. }, PlainVerdict::Proved) => {}
            (RfnOutcome::Falsified { trace, .. }, PlainVerdict::Falsified { .. }) => {
                prop_assert!(validate_trace(&n, &p, trace).unwrap());
            }
            (o, v) => {
                prop_assert!(false, "multi-trace verdict mismatch: {o:?} vs {v:?}");
            }
        }
    }
}
