//! Parallel property portfolio: results must be deterministic — identical
//! verdicts, iteration counts and abstractions at any worker count, in input
//! order.

use rfn::core::{parallel_map, Rfn, RfnOptions, RfnOutcome};
use rfn::designs::small::{
    round_robin_arbiter, saturating_counter, traffic_light, wrapping_counter,
};
use rfn::designs::Design;
use rfn::netlist::Property;

/// The semantic content of an outcome, with wall-clock measurements removed.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Proved {
        iterations: usize,
        abstract_registers: usize,
    },
    Falsified {
        iterations: usize,
        trace_cycles: usize,
    },
    Inconclusive {
        reason: String,
    },
}

fn verdict(outcome: &RfnOutcome) -> Verdict {
    match outcome {
        RfnOutcome::Proved { stats } => Verdict::Proved {
            iterations: stats.iterations,
            abstract_registers: stats.abstract_registers,
        },
        RfnOutcome::Falsified { trace, stats } => Verdict::Falsified {
            iterations: stats.iterations,
            trace_cycles: trace.num_cycles(),
        },
        RfnOutcome::Inconclusive { reason, .. } => Verdict::Inconclusive {
            reason: reason.clone(),
        },
    }
}

fn run_portfolio(cases: &[(&Design, &Property)], threads: usize) -> Vec<Verdict> {
    parallel_map(cases.len(), threads, |i| {
        let (design, property) = cases[i];
        let outcome = Rfn::new(&design.netlist, property, RfnOptions::default())
            .expect("valid property")
            .run()
            .expect("structural soundness");
        verdict(&outcome)
    })
}

#[test]
fn portfolio_results_are_deterministic_across_thread_counts() {
    let designs = [
        traffic_light(),
        saturating_counter(6),
        wrapping_counter(5, 19),
        round_robin_arbiter(4),
    ];
    let cases: Vec<(&Design, &Property)> = designs
        .iter()
        .flat_map(|d| d.properties.iter().map(move |p| (d, p)))
        .collect();
    assert!(cases.len() >= 4, "expected several portfolio jobs");

    let serial = run_portfolio(&cases, 1);
    for threads in [2, 4, 8] {
        let parallel = run_portfolio(&cases, threads);
        assert_eq!(
            serial, parallel,
            "portfolio verdicts changed at {threads} threads"
        );
    }
    // At least one property of the pedagogical designs is falsifiable and one
    // provable, so the determinism check is not vacuous.
    assert!(serial.iter().any(|v| matches!(v, Verdict::Proved { .. })));
    assert!(serial
        .iter()
        .any(|v| matches!(v, Verdict::Falsified { .. })));
}
