//! End-to-end integration tests: the full RFN loop on the pedagogical
//! designs, with outcomes cross-checked against the plain symbolic model
//! checker (which is exact on these sizes).

use rfn::core::{validate_trace, Rfn, RfnOptions, RfnOutcome};
use rfn::designs::small::{
    round_robin_arbiter, saturating_counter, traffic_light, wrapping_counter,
};
use rfn::mc::{verify_plain, PlainOptions, PlainVerdict};

fn check_agreement(design: &rfn::designs::Design) {
    for property in &design.properties {
        let rfn_outcome = Rfn::new(&design.netlist, property, RfnOptions::default())
            .expect("valid property")
            .run()
            .expect("structural soundness");
        let plain = verify_plain(&design.netlist, property, &PlainOptions::default())
            .expect("plain mc runs");
        match (&rfn_outcome, plain.verdict) {
            (RfnOutcome::Proved { .. }, PlainVerdict::Proved) => {}
            (RfnOutcome::Falsified { trace, .. }, PlainVerdict::Falsified { depth }) => {
                assert!(
                    validate_trace(&design.netlist, property, trace).unwrap(),
                    "{}: falsification trace does not replay",
                    property.name
                );
                // RFN traces are not guaranteed shortest, but can't be
                // shorter than the true BFS depth (states are 0-indexed, so
                // depth d means d + 1 trace cycles).
                assert!(
                    trace.num_cycles() > depth,
                    "{}: trace shorter than the shortest counterexample",
                    property.name
                );
            }
            (rfn, plain) => panic!(
                "{}: RFN and plain MC disagree: {rfn:?} vs {plain:?}",
                property.name
            ),
        }
    }
}

#[test]
fn saturating_counter_agrees() {
    check_agreement(&saturating_counter(5));
}

#[test]
fn wrapping_counter_agrees() {
    check_agreement(&wrapping_counter(5, 11));
}

#[test]
fn traffic_light_agrees() {
    check_agreement(&traffic_light());
}

#[test]
fn arbiter_agrees() {
    check_agreement(&round_robin_arbiter(4));
}

#[test]
fn wrapping_counter_trace_has_exact_length() {
    let design = wrapping_counter(6, 20);
    let property = &design.properties[0];
    let outcome = Rfn::new(&design.netlist, property, RfnOptions::default())
        .unwrap()
        .run()
        .unwrap();
    let RfnOutcome::Falsified { trace, stats } = outcome else {
        panic!("expected falsification");
    };
    // Counter hits 20 after 20 enabled cycles; the watchdog latches one
    // cycle later: 22 states in the trace.
    assert_eq!(trace.num_cycles(), 22);
    assert_eq!(stats.trace_length, Some(22));
}

#[test]
fn rfn_never_includes_irrelevant_registers() {
    // The arbiter property only concerns grant/pointer logic; RFN must not
    // drag in more than the COI, and should stay well below it.
    let design = round_robin_arbiter(6);
    let property = &design.properties[0];
    let outcome = Rfn::new(&design.netlist, property, RfnOptions::default())
        .unwrap()
        .run()
        .unwrap();
    let RfnOutcome::Proved { stats } = outcome else {
        panic!("expected proof");
    };
    assert!(stats.abstract_registers <= stats.coi_registers);
}
