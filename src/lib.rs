//! RFN: formal property verification by abstraction refinement with formal,
//! simulation and hybrid engines — a Rust reproduction of the DAC 2001 paper
//! by Wang, Ho, Long, Kukula, Zhu, Ma and Damiano.
//!
//! This facade crate re-exports the whole tool:
//!
//! * [`netlist`] — the gate-level design IR, cubes/traces, abstractions,
//!   cone-of-influence and min-cut computations,
//! * [`bdd`] — the ROBDD package with group sifting,
//! * [`sim`] — two- and three-valued simulation,
//! * [`atpg`] — combinational and sequential ATPG justification,
//! * [`mc`] — BDD-based symbolic model checking,
//! * [`core`] — the RFN loop itself plus coverage analysis,
//! * [`designs`] — the synthetic benchmark designs behind Tables 1 and 2.
//!
//! # Quickstart
//!
//! ```
//! use rfn::core::{Rfn, RfnOptions, RfnOutcome};
//! use rfn::designs::small::traffic_light;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = traffic_light();
//! let property = &design.properties[0]; // "no_crash"
//! let outcome = Rfn::new(&design.netlist, property, RfnOptions::default())?.run()?;
//! assert!(matches!(outcome, RfnOutcome::Proved { .. }));
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record. The
//! runnable entry points live in `examples/` and in the `rfn-bench` crate's
//! `table1`, `table2` and `figure1` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfn_atpg as atpg;
pub use rfn_bdd as bdd;
pub use rfn_core as core;
pub use rfn_designs as designs;
pub use rfn_mc as mc;
pub use rfn_netlist as netlist;
pub use rfn_sim as sim;
