//! The `rfn` command-line tool: verify properties and analyze coverage on
//! designs from any supported input form.
//!
//! ```text
//! rfn info <design>
//! rfn verify <design> [--watch <signal>[=0|1]] [--watch ...] [--name <p>]
//!            [--engine <rfn|plain|bmc|race>]
//!            [--time-limit <s>] [--threads <n>] [--sim-batches <n>]
//!            [--sim-seed <n>] [--cluster-limit <nodes>] [--bdd-threads <n>]
//!            [--static-order <seed|force>] [--dvo-schedule <spec>]
//!            [--order-cache-dir <dir>] [--group-threshold <t>] [--no-group]
//!            [--checkpoint-dir <dir>] [--resume]
//!            [--no-frontier-simplify] [--trace-out <file>] [--breakdown] [-v]
//! rfn coverage <design> --signals <a,b,c> [--bfs <k>] [--time-limit <s>]
//!              [--sim-batches <n>] [--sim-seed <n>] [--cluster-limit <nodes>]
//!              [--bdd-threads <n>] [--static-order <seed|force>]
//!              [--dvo-schedule <spec>] [--no-frontier-simplify]
//!              [--trace-out <file>] [--breakdown]
//! ```
//!
//! `<design>` is a [`DesignSource`] spec, resolved uniformly for every
//! subcommand: `builtin:<name>` (or a bare builtin name like `fifo`) for a
//! bundled generator, `fuzz:<seed>` for a seeded random design, a
//! `.aag`/`.aig` path for an AIGER file, a `.cnf` path for a DIMACS CNF
//! formula, and any other path for the line-oriented text netlist format.
//! When the input carries its own properties (AIGER bad literals, the
//! DIMACS satisfiability property, builtin/fuzz properties), `verify` runs
//! them without any `--watch`; `--watch` flags replace them.
//!
//! Warm-start order caches and checkpoints are keyed by the design's
//! canonical identity — the file content hash for file-backed designs — so
//! renaming a file keeps its warm starts while editing it invalidates them.
//!
//! `--engine` picks the verification lane: `rfn` (the default
//! abstraction-refinement loop), `plain` (whole-COI symbolic model
//! checking), `bmc` (SAT-based bounded model checking with UNSAT-core
//! abstraction), or `race` (all three race under the shared budget; the
//! first conclusive lane wins and cancels the others).
//!
//! `--cluster-limit` bounds the node count of each clustered transition
//! partition used by image computation (0 keeps one partition per register);
//! `--no-frontier-simplify` disables don't-care frontier minimization.
//!
//! `--bdd-threads` fans every image computation across that many worker
//! threads on a shared BDD manager (1 = the serial engine). Verdicts, error
//! traces and coverage counts are identical for any thread count; only the
//! wall-clock changes. This is *intra*-property parallelism and composes
//! with the `--threads` portfolio: each property job gets its own worker
//! pool.
//!
//! `--static-order` picks the initial BDD variable order: `seed` interleaves
//! register current/next pairs in declaration order (the default), `force`
//! runs the FORCE center-of-gravity pre-ordering pass over the netlist
//! topology before any BDD is built. Verdicts and reached-state sets are
//! identical under either order; only node counts and wall-clock change.
//!
//! `--dvo-schedule` selects when dynamic variable reordering (sifting) runs:
//! `never`, `doubling` (default: sift when live nodes double past a floor),
//! `growth[:R]` (sift when live nodes grow by factor R since the last sift),
//! `time[:MS]` (sift at most once per MS milliseconds), or `backoff[:R]`
//! (growth-triggered, but the threshold backs off after unprofitable sifts).
//!
//! `--order-cache-dir <dir>` persists the converged variable order per
//! (design, property) after a conclusive verdict and warm-starts repeat runs
//! from it; the cache is keyed by a structural hash of the netlist, so a
//! changed design never silently reuses a stale order.
//!
//! `--sim-batches` sets how many 64-pattern batches the random-simulation
//! concretization engine tries before falling back to sequential ATPG (0
//! disables the engine); `--sim-seed` makes its pseudo-random patterns
//! reproducible (results are deterministic per seed regardless of
//! `--threads`).
//!
//! `--watch` may be repeated: the properties form a portfolio verified in
//! parallel (one BDD manager per property, `--threads` workers) with results
//! printed in command-line order. The exit code is the worst verdict: any
//! falsification wins over any inconclusive result.
//!
//! With the `plain` and `bmc` engines, properties whose register cones of
//! influence overlap are *grouped*: each group shares one model build and
//! one reachability fixpoint (or one incremental SAT unrolling), which is
//! faster while producing verdicts and depths identical to ungrouped runs.
//! `--group-threshold <t>` sets the Jaccard COI-overlap needed to join a
//! group (default 0.5); `--no-group` disables grouping entirely.
//!
//! `--time-limit` is one budget *shared by the whole portfolio* — all
//! properties race the same deadline. `--checkpoint-dir` makes each RFN job
//! snapshot its refinement loop after every iteration; `--resume` continues
//! from those snapshots, so a killed or budget-exhausted run picks up where
//! it stopped and reaches the same verdict the uninterrupted run would have.
//!
//! `--trace-out <file>` streams the run's structured events as JSONL (schema:
//! `rfn_trace` crate docs); `--breakdown` prints a per-phase time table after
//! the results. Both observe the *same* event stream the engines emit — the
//! table is computed from the events, so it can never disagree with the file.
//!
//! Text netlists use the line-oriented format of
//! [`rfn_netlist::parse_netlist`](rfn::netlist::parse_netlist); see
//! `examples/custom_design.rs` for a complete design.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rfn::core::prelude::*;
use rfn::mc::ReachOptions;
use rfn::netlist::{Coi, SignalId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rfn: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  rfn info <design>
  rfn verify <design> [--watch <signal>[=0|1]] [--watch ...] [--name <p>]
             [--engine <rfn|plain|bmc|race>]
             [--time-limit <s>] [--threads <n>] [--sim-batches <n>]
             [--sim-seed <n>] [--cluster-limit <nodes>] [--bdd-threads <n>]
             [--static-order <seed|force>] [--dvo-schedule <spec>]
             [--order-cache-dir <dir>] [--group-threshold <t>] [--no-group]
             [--checkpoint-dir <dir>] [--resume]
             [--no-frontier-simplify] [--trace-out <file>] [--breakdown] [-v]
  rfn coverage <design> --signals <a,b,c> [--bfs <k>] [--time-limit <s>]
               [--sim-batches <n>] [--sim-seed <n>] [--cluster-limit <nodes>]
               [--bdd-threads <n>] [--static-order <seed|force>]
               [--dvo-schedule <spec>] [--no-frontier-simplify]
               [--trace-out <file>] [--breakdown]

`<design>` is a design spec: builtin:<name> (fifo, integer_unit, usb,
processor; bare names work too), fuzz:<seed> (seeded random design),
<path>.aag/.aig (AIGER), <path>.cnf (DIMACS CNF), or any other path (text
netlist). Inputs that carry their own properties (AIGER bad literals,
DIMACS, builtin, fuzz) verify without --watch; --watch replaces them.
`--watch` may repeat; the portfolio runs in parallel on --threads workers.
`--engine` picks the lane: rfn (default), plain (whole-COI symbolic MC),
bmc (SAT bounded model checking), or race (all three; first conclusive
lane wins and cancels the rest).
`--sim-batches`/`--sim-seed` configure the random-simulation concretization
engine (64 patterns per batch; 0 batches disables it).
`--cluster-limit` bounds the clustered transition partitions of image
computation (0 = one partition per register); `--no-frontier-simplify`
turns off don't-care frontier minimization. `--bdd-threads` parallelizes
each image computation itself (1 = serial; identical results either way).
`--static-order` picks the initial BDD variable order (seed = declaration
order, force = FORCE topological pre-ordering); `--dvo-schedule` picks the
reorder trigger (never|doubling|growth[:R]|time[:MS]|backoff[:R]);
`--order-cache-dir` warm-starts repeat runs from the converged order saved
per (design, property). Verdicts are identical under every ordering knob.
With --engine plain/bmc, properties with overlapping register COIs share
one model and fixpoint (or SAT unrolling) per group; `--group-threshold`
sets the Jaccard overlap to join a group (default 0.5), `--no-group`
disables grouping. Verdicts and depths match ungrouped runs exactly.
`--time-limit` is one budget shared by the whole portfolio (all properties
race the same deadline). `--checkpoint-dir` snapshots each RFN job's
refinement loop after every iteration; `--resume` continues from the
snapshots.
`--trace-out` writes the structured event stream as JSONL; `--breakdown`
prints a per-phase time table.
exit codes: 0 all properties proved / analysis done, 1 some property
            falsified, 3 some property inconclusive (falsified wins)";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let spec = it.next().ok_or("missing design spec")?;
    let loaded = DesignSource::parse(spec)
        .and_then(|source| source.load())
        .map_err(|e| e.to_string())?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "info" => {
            info(&loaded);
            Ok(ExitCode::SUCCESS)
        }
        "verify" => verify(&loaded, &rest),
        "coverage" => coverage(&loaded.design.netlist, &rest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn info(loaded: &LoadedDesign) {
    let n = &loaded.design.netlist;
    println!("source: {} ({})", loaded.source, loaded.identity.canonical);
    println!("{n}");
    for (name, sig) in n.outputs() {
        let coi = Coi::of(n, [*sig]);
        println!(
            "  output {name}: COI {} registers, {} gates",
            coi.num_registers(),
            coi.num_gates()
        );
    }
    for p in &loaded.design.properties {
        let coi = Coi::of(n, [p.signal]);
        println!(
            "  property {}: never {}={} | COI {} registers, {} gates",
            p.name,
            n.signal_name(p.signal),
            u8::from(p.value),
            coi.num_registers(),
            coi.num_gates()
        );
    }
}

fn lookup(n: &Netlist, name: &str) -> Result<SignalId, String> {
    n.find(name)
        .ok_or_else(|| format!("no signal named `{name}` in the design"))
}

fn flag_value<'a>(rest: &'a [&String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

/// All values of a repeatable flag, in command-line order.
fn flag_values<'a>(rest: &'a [&String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].as_str() == flag {
            if let Some(v) = rest.get(i + 1) {
                out.push(v.as_str());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn thread_count(rest: &[&String]) -> Result<usize, String> {
    match flag_value(rest, "--threads") {
        None => Ok(default_threads()),
        Some(s) => s
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| format!("bad --threads `{s}`")),
    }
}

/// Parses `--sim-batches` / `--sim-seed` into `(batches, seed)` overrides.
fn sim_flags(rest: &[&String]) -> Result<(Option<usize>, Option<u64>), String> {
    let batches = match flag_value(rest, "--sim-batches") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| format!("bad --sim-batches `{s}`"))?,
        ),
    };
    let seed = match flag_value(rest, "--sim-seed") {
        None => None,
        Some(s) => Some(
            s.parse::<u64>()
                .map_err(|_| format!("bad --sim-seed `{s}`"))?,
        ),
    };
    Ok((batches, seed))
}

/// Parses `--cluster-limit` / `--no-frontier-simplify` / `--bdd-threads`
/// into overrides.
fn image_flags(rest: &[&String]) -> Result<(Option<usize>, bool, usize), String> {
    let cluster_limit = match flag_value(rest, "--cluster-limit") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| format!("bad --cluster-limit `{s}`"))?,
        ),
    };
    let frontier_simplify = !rest.iter().any(|a| a.as_str() == "--no-frontier-simplify");
    let bdd_threads = match flag_value(rest, "--bdd-threads") {
        None => 1,
        Some(s) => s
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| format!("bad --bdd-threads `{s}`"))?,
    };
    Ok((cluster_limit, frontier_simplify, bdd_threads))
}

/// Parses `--static-order` / `--dvo-schedule` into ordering overrides.
fn order_flags(
    rest: &[&String],
) -> Result<(Option<rfn::mc::StaticOrder>, Option<rfn::mc::DvoPolicy>), String> {
    let static_order = match flag_value(rest, "--static-order") {
        None => None,
        Some(s) => {
            Some(rfn::mc::StaticOrder::parse(s).map_err(|e| format!("bad --static-order: {e}"))?)
        }
    };
    let dvo = match flag_value(rest, "--dvo-schedule") {
        None => None,
        Some(s) => {
            Some(rfn::mc::DvoPolicy::parse(s).map_err(|e| format!("bad --dvo-schedule: {e}"))?)
        }
    };
    Ok((static_order, dvo))
}

/// Parses `--engine` into the session's lane selection.
fn engine_kind(rest: &[&String]) -> Result<EngineKind, String> {
    match flag_value(rest, "--engine") {
        None | Some("rfn") => Ok(EngineKind::Rfn),
        Some("plain") => Ok(EngineKind::PlainMc),
        Some("bmc") => Ok(EngineKind::Bmc),
        Some("race") => Ok(EngineKind::Race),
        Some(other) => Err(format!("bad --engine `{other}` (rfn|plain|bmc|race)")),
    }
}

fn time_limit(rest: &[&String]) -> Result<Option<Duration>, String> {
    match flag_value(rest, "--time-limit") {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(|v| Some(Duration::from_secs(v)))
            .map_err(|_| format!("bad --time-limit `{s}`")),
    }
}

/// The CLI's observability trio: the sink to hand to the session (JSONL file
/// and/or an in-memory buffer for the breakdown table), the buffer itself,
/// and the JSONL sink so it can be flushed after the run.
struct Observers {
    sink: Option<Arc<dyn TraceSink>>,
    memory: Option<Arc<MemorySink>>,
    jsonl: Option<Arc<JsonlSink>>,
}

/// Builds the session sink from `--trace-out` / `--breakdown`.
fn observers(rest: &[&String]) -> Result<Observers, String> {
    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    let jsonl = match flag_value(rest, "--trace-out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            let sink = Arc::new(JsonlSink::new(Box::new(std::io::BufWriter::new(file))));
            sinks.push(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let memory = if rest.iter().any(|a| a.as_str() == "--breakdown") {
        let sink = Arc::new(MemorySink::new());
        sinks.push(sink.clone());
        Some(sink)
    } else {
        None
    };
    let sink = match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(FanoutSink::new(sinks)) as Arc<dyn TraceSink>),
    };
    Ok(Observers {
        sink,
        memory,
        jsonl,
    })
}

/// Flushes the JSONL file and prints the breakdown table, if requested.
fn finish_observers(obs: &Observers) -> Result<(), String> {
    if let Some(jsonl) = &obs.jsonl {
        jsonl.flush();
    }
    if let Some(memory) = &obs.memory {
        let table = TimeBreakdown::from_events(&memory.take()).render();
        if table.is_empty() {
            println!("\nno spans recorded");
        } else {
            let mut stdout = std::io::stdout().lock();
            let _ = write!(stdout, "\n{table}");
        }
    }
    Ok(())
}

fn verify(loaded: &LoadedDesign, rest: &[&String]) -> Result<ExitCode, String> {
    let n = &loaded.design.netlist;
    let watches = flag_values(rest, "--watch");
    // Explicit `--watch` flags replace whatever the input format carries;
    // without them the design's own properties (AIGER bad literals, the
    // DIMACS `sat` property, builtin/fuzz properties) form the portfolio.
    let properties = if watches.is_empty() {
        if loaded.design.properties.is_empty() {
            return Err(format!(
                "design `{}` carries no properties; verify needs --watch <signal>[=0|1]",
                loaded.source
            ));
        }
        loaded.design.properties.clone()
    } else {
        let mut properties = Vec::with_capacity(watches.len());
        for watch in &watches {
            let (sig_name, value) = match watch.split_once('=') {
                Some((s, "0")) => (s, false),
                Some((s, "1")) => (s, true),
                Some((_, v)) => return Err(format!("bad watch value `{v}` (use 0 or 1)")),
                None => (*watch, true),
            };
            let signal = lookup(n, sig_name)?;
            // `--name` renames a single property; portfolios use signal names.
            let name = if watches.len() == 1 {
                flag_value(rest, "--name").unwrap_or(sig_name).to_owned()
            } else {
                sig_name.to_owned()
            };
            properties.push(Property::never_value(name, signal, value));
        }
        properties
    };
    let obs = observers(rest)?;
    // Each property is an independent job with its own BDD managers; the
    // session runs the portfolio in parallel and reports in command-line
    // order, with the event streams merged deterministically.
    let (sim_batches, sim_seed) = sim_flags(rest)?;
    let (cluster_limit, frontier_simplify, bdd_threads) = image_flags(rest)?;
    let mut rfn_opts = RfnOptions::default()
        .with_frontier_simplify(frontier_simplify)
        .with_bdd_threads(bdd_threads);
    if let Some(batches) = sim_batches {
        rfn_opts = rfn_opts.with_sim_batches(batches);
    }
    if let Some(seed) = sim_seed {
        rfn_opts = rfn_opts.with_sim_seed(seed);
    }
    if let Some(limit) = cluster_limit {
        rfn_opts = rfn_opts.with_cluster_limit(limit);
    }
    let (static_order, dvo) = order_flags(rest)?;
    if let Some(order) = static_order {
        rfn_opts = rfn_opts.with_static_order(order);
    }
    if let Some(policy) = dvo {
        rfn_opts = rfn_opts.with_dvo(policy);
    }
    if let Some(dir) = flag_value(rest, "--order-cache-dir") {
        rfn_opts = rfn_opts.with_order_cache_dir(dir);
    }
    if let Some(dir) = flag_value(rest, "--checkpoint-dir") {
        rfn_opts = rfn_opts.with_checkpoint_dir(dir);
    }
    if rest.iter().any(|a| a.as_str() == "--resume") {
        rfn_opts = rfn_opts.with_resume(true);
    }
    let mut session = VerifySession::new(n)
        .rfn_options(rfn_opts)
        .design_identity(&loaded.identity)
        .engine(engine_kind(rest)?)
        .properties(properties)
        .threads(thread_count(rest)?)
        .verbosity(u8::from(rest.iter().any(|a| a.as_str() == "-v")));
    if rest.iter().any(|a| a.as_str() == "--no-group") {
        session = session.grouping(false);
    }
    if let Some(s) = flag_value(rest, "--group-threshold") {
        let t = s
            .parse::<f64>()
            .map_err(|_| format!("bad --group-threshold `{s}`"))?;
        session = session.group_threshold(t);
    }
    if let Some(limit) = time_limit(rest)? {
        session = session.time_limit(limit);
    }
    if let Some(sink) = obs.sink.clone() {
        session = session.trace(sink);
    }
    let report = session.run().map_err(|e| e.to_string())?;
    for result in &report.results {
        report_result(n, result);
    }
    finish_observers(&obs)?;
    Ok(ExitCode::from(report.worst_exit_code()))
}

/// Prints one property's verdict. RFN statistics are appended when the RFN
/// lane produced the verdict; the plain and BMC lanes print without them.
fn report_result(n: &Netlist, result: &PropertyResult) {
    match &result.verdict {
        Verdict::Proved => match &result.stats {
            Some(stats) => println!(
                "PROVED `{}`: abstraction {} of {} COI registers, {} iterations, {:.2?}",
                result.property.name,
                stats.abstract_registers,
                stats.coi_registers,
                stats.iterations,
                stats.elapsed
            ),
            None => println!("PROVED `{}`", result.property.name),
        },
        Verdict::Falsified { trace, depth } => {
            // The plain/BMC lanes report the step index of the violation;
            // when a concrete trace exists, its cycle count is the length.
            let shape = match trace {
                Some(t) => format!("{}-cycle error trace", t.num_cycles()),
                None => format!("target hit at depth {depth}"),
            };
            match &result.stats {
                Some(stats) => println!(
                    "FALSIFIED `{}`: {shape} ({} iterations, {:.2?})",
                    result.property.name, stats.iterations, stats.elapsed
                ),
                None => println!("FALSIFIED `{}`: {shape}", result.property.name),
            }
            if let Some(trace) = trace {
                print!("{}", trace.display(n));
            }
        }
        Verdict::Inconclusive { reason } => {
            println!("INCONCLUSIVE `{}`: {reason}", result.property.name);
        }
    }
}

fn coverage(n: &Netlist, rest: &[&String]) -> Result<ExitCode, String> {
    let signals = flag_value(rest, "--signals").ok_or("coverage needs --signals <a,b,c>")?;
    let sigs: Result<Vec<SignalId>, String> =
        signals.split(',').map(|s| lookup(n, s.trim())).collect();
    let set = CoverageSet::new("cli", sigs?);
    let obs = observers(rest)?;
    let (sim_batches, sim_seed) = sim_flags(rest)?;
    let (cluster_limit, frontier_simplify, bdd_threads) = image_flags(rest)?;
    let mut cov_opts = CoverageOptions::default()
        .with_frontier_simplify(frontier_simplify)
        .with_bdd_threads(bdd_threads);
    if let Some(batches) = sim_batches {
        cov_opts.concretize_sim.batches = batches;
    }
    if let Some(seed) = sim_seed {
        cov_opts.concretize_sim.seed = seed;
    }
    if let Some(limit) = cluster_limit {
        cov_opts = cov_opts.with_cluster_limit(limit);
    }
    let (static_order, dvo) = order_flags(rest)?;
    if let Some(order) = static_order {
        cov_opts.reach.static_order = order;
    }
    if let Some(policy) = dvo {
        cov_opts.reach.dvo = policy;
    }
    let mut session = VerifySession::new(n)
        .coverage_options(cov_opts)
        .coverage_set(&set);
    if let Some(limit) = time_limit(rest)? {
        session = session.time_limit(limit);
    }
    if let Some(sink) = obs.sink.clone() {
        session = session.trace(sink);
    }
    let report = session.run().map_err(|e| e.to_string())?;
    let cov = &report.coverage[0];
    println!(
        "coverage: {} states | {} unreachable, {} reachable, {} unresolved \
         | abstraction {} regs | {:.2?}",
        cov.total_states,
        cov.unreachable,
        cov.reachable,
        cov.unresolved,
        cov.abstract_registers,
        cov.elapsed
    );
    if let Some(k) = flag_value(rest, "--bfs") {
        let k: usize = k.parse().map_err(|_| format!("bad --bfs `{k}`"))?;
        let mut bfs_reach = ReachOptions::default()
            .with_frontier_simplify(frontier_simplify)
            .with_bdd_threads(bdd_threads);
        if let Some(limit) = cluster_limit {
            bfs_reach = bfs_reach.with_cluster_limit(limit);
        }
        if let Some(order) = static_order {
            bfs_reach = bfs_reach.with_static_order(order);
        }
        if let Some(policy) = dvo {
            bfs_reach.dvo = policy;
        }
        let bfs = bfs_coverage(n, &set, k, 4_000_000, &bfs_reach).map_err(|e| e.to_string())?;
        println!(
            "BFS({k}):  {} unreachable | abstraction {} regs | {:.2?}",
            bfs.unreachable, bfs.abstract_registers, bfs.elapsed
        );
    }
    finish_observers(&obs)?;
    Ok(ExitCode::SUCCESS)
}
