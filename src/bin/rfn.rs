//! The `rfn` command-line tool: verify properties and analyze coverage on
//! netlists in the text format.
//!
//! ```text
//! rfn info <netlist>
//! rfn verify <netlist> --watch <signal>[=0|1] [--watch ...] [--name <p>]
//!            [--time-limit <s>] [--threads <n>] [-v]
//! rfn coverage <netlist> --signals <a,b,c> [--bfs <k>] [--time-limit <s>]
//! ```
//!
//! `--watch` may be repeated: the properties form a portfolio verified in
//! parallel (one BDD manager per property, `--threads` workers) with results
//! printed in command-line order. The exit code is the worst verdict: any
//! falsification wins over any inconclusive result.
//!
//! Netlists use the line-oriented format of
//! [`rfn_netlist::parse_netlist`](rfn::netlist::parse_netlist); see
//! `examples/custom_design.rs` for a complete design.

use std::process::ExitCode;
use std::time::Duration;

use rfn::core::{
    analyze_coverage, bfs_coverage, default_threads, parallel_map, CoverageOptions, Rfn,
    RfnOptions, RfnOutcome,
};
use rfn::mc::ReachOptions;
use rfn::netlist::{parse_netlist, Coi, CoverageSet, Netlist, Property, SignalId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rfn: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  rfn info <netlist>
  rfn verify <netlist> --watch <signal>[=0|1] [--watch ...] [--name <p>]
             [--time-limit <s>] [--threads <n>] [-v]
  rfn coverage <netlist> --signals <a,b,c> [--bfs <k>] [--time-limit <s>]

`--watch` may repeat; the portfolio runs in parallel on --threads workers.
exit codes: 0 all properties proved / analysis done, 1 some property
            falsified, 3 some property inconclusive (falsified wins)";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let path = it.next().ok_or("missing netlist path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let netlist = parse_netlist(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "info" => {
            info(&netlist);
            Ok(ExitCode::SUCCESS)
        }
        "verify" => verify(&netlist, &rest),
        "coverage" => coverage(&netlist, &rest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn info(n: &Netlist) {
    println!("{n}");
    for (name, sig) in n.outputs() {
        let coi = Coi::of(n, [*sig]);
        println!(
            "  output {name}: COI {} registers, {} gates",
            coi.num_registers(),
            coi.num_gates()
        );
    }
}

fn lookup(n: &Netlist, name: &str) -> Result<SignalId, String> {
    n.find(name)
        .ok_or_else(|| format!("no signal named `{name}` in the design"))
}

fn flag_value<'a>(rest: &'a [&String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

/// All values of a repeatable flag, in command-line order.
fn flag_values<'a>(rest: &'a [&String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].as_str() == flag {
            if let Some(v) = rest.get(i + 1) {
                out.push(v.as_str());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn thread_count(rest: &[&String]) -> Result<usize, String> {
    match flag_value(rest, "--threads") {
        None => Ok(default_threads()),
        Some(s) => s
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| format!("bad --threads `{s}`")),
    }
}

fn time_limit(rest: &[&String]) -> Result<Option<Duration>, String> {
    match flag_value(rest, "--time-limit") {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(|v| Some(Duration::from_secs(v)))
            .map_err(|_| format!("bad --time-limit `{s}`")),
    }
}

fn verify(n: &Netlist, rest: &[&String]) -> Result<ExitCode, String> {
    let watches = flag_values(rest, "--watch");
    if watches.is_empty() {
        return Err("verify needs --watch <signal>[=0|1]".to_owned());
    }
    let mut properties = Vec::with_capacity(watches.len());
    for watch in &watches {
        let (sig_name, value) = match watch.split_once('=') {
            Some((s, "0")) => (s, false),
            Some((s, "1")) => (s, true),
            Some((_, v)) => return Err(format!("bad watch value `{v}` (use 0 or 1)")),
            None => (*watch, true),
        };
        let signal = lookup(n, sig_name)?;
        // `--name` renames a single property; portfolios use signal names.
        let name = if watches.len() == 1 {
            flag_value(rest, "--name").unwrap_or(sig_name).to_owned()
        } else {
            sig_name.to_owned()
        };
        properties.push(Property::never_value(name, signal, value));
    }
    let options = RfnOptions {
        time_limit: time_limit(rest)?,
        verbosity: u8::from(rest.iter().any(|a| a.as_str() == "-v")),
        ..RfnOptions::default()
    };
    let threads = thread_count(rest)?;
    // Each property is an independent job with its own BDD managers; run the
    // portfolio in parallel and report in command-line order.
    let outcomes: Vec<Result<RfnOutcome, String>> = parallel_map(properties.len(), threads, |i| {
        Rfn::new(n, &properties[i], options.clone())
            .map_err(|e| e.to_string())?
            .run()
            .map_err(|e| e.to_string())
    });
    let mut worst = 0u8;
    for (property, outcome) in properties.iter().zip(outcomes) {
        let code = report_outcome(n, property, outcome?);
        // Any falsification outranks any inconclusive result.
        worst = match (worst, code) {
            (1, _) | (_, 1) => 1,
            (3, _) | (_, 3) => 3,
            _ => code,
        };
    }
    Ok(ExitCode::from(worst))
}

/// Prints one property's verdict and returns its exit code.
fn report_outcome(n: &Netlist, property: &Property, outcome: RfnOutcome) -> u8 {
    match outcome {
        RfnOutcome::Proved { stats } => {
            println!(
                "PROVED `{}`: abstraction {} of {} COI registers, {} iterations, {:.2?}",
                property.name,
                stats.abstract_registers,
                stats.coi_registers,
                stats.iterations,
                stats.elapsed
            );
            0
        }
        RfnOutcome::Falsified { trace, stats } => {
            println!(
                "FALSIFIED `{}`: {}-cycle error trace ({} iterations, {:.2?})",
                property.name,
                trace.num_cycles(),
                stats.iterations,
                stats.elapsed
            );
            print!("{}", trace.display(n));
            1
        }
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("INCONCLUSIVE `{}`: {reason}", property.name);
            3
        }
    }
}

fn coverage(n: &Netlist, rest: &[&String]) -> Result<ExitCode, String> {
    let signals = flag_value(rest, "--signals").ok_or("coverage needs --signals <a,b,c>")?;
    let sigs: Result<Vec<SignalId>, String> =
        signals.split(',').map(|s| lookup(n, s.trim())).collect();
    let set = CoverageSet::new("cli", sigs?);
    let options = CoverageOptions {
        time_limit: time_limit(rest)?,
        ..CoverageOptions::default()
    };
    let report = analyze_coverage(n, &set, &options).map_err(|e| e.to_string())?;
    println!(
        "coverage: {} states | {} unreachable, {} reachable, {} unresolved \
         | abstraction {} regs | {:.2?}",
        report.total_states,
        report.unreachable,
        report.reachable,
        report.unresolved,
        report.abstract_registers,
        report.elapsed
    );
    if let Some(k) = flag_value(rest, "--bfs") {
        let k: usize = k.parse().map_err(|_| format!("bad --bfs `{k}`"))?;
        let bfs = bfs_coverage(n, &set, k, 4_000_000, &ReachOptions::default())
            .map_err(|e| e.to_string())?;
        println!(
            "BFS({k}):  {} unreachable | abstraction {} regs | {:.2?}",
            bfs.unreachable, bfs.abstract_registers, bfs.elapsed
        );
    }
    Ok(ExitCode::SUCCESS)
}
