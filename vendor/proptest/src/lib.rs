//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This crate keeps the same *spelling* at use sites
//! (`proptest!`, `prop_oneof!`, `Strategy`, `prop::collection::vec`, …) while
//! implementing generation as straightforward seeded random sampling:
//!
//! * deterministic per-test seeds (override with `PROPTEST_SEED=<u64>`),
//! * no shrinking — on failure the case index and seed are printed so the
//!   failure replays exactly,
//! * `prop_assert!`/`prop_assert_eq!` map to the std assert macros.
//!
//! The surface is intentionally small; extend it when a test needs more.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic 64-bit RNG (splitmix64) used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a seeded sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds a branch
    /// strategy from a strategy for subtrees. `depth` bounds the nesting;
    /// the other two parameters (desired size / branch factor) are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        Recursive {
            base,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Pick a nesting depth, then stack the branch builder that many
        // times. Mixing the leaf back in at every level produces trees of
        // varied shape rather than full depth-d trees.
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            let mixed = Union::new(vec![self.base.clone(), strat]).boxed();
            strat = (self.recurse)(mixed);
        }
        strat.generate(rng)
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

// Integer ranges are strategies over their element type.
macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

/// Strategy for an arbitrary `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything that can describe a vector length.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one property. Used by the `proptest!` macro.
pub struct TestRunner {
    base_seed: u64,
    cases: u32,
    next_case: u32,
    current: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named property.
    ///
    /// The seed derives deterministically from the property name so runs are
    /// reproducible; set `PROPTEST_SEED=<u64>` to explore a different stream.
    pub fn new(name: &str, config: &ProptestConfig) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRunner {
            base_seed: h ^ env_seed,
            cases: config.cases,
            next_case: 0,
            current: 0,
            rng: TestRng::new(0),
        }
    }

    /// Advances to the next case; returns `false` when done.
    pub fn next_case(&mut self) -> bool {
        if self.next_case >= self.cases {
            return false;
        }
        self.current = self.next_case;
        self.next_case += 1;
        let stride: u64 = 0xA076_1D64_78BD_642F;
        self.rng = TestRng::new(
            self.base_seed
                .wrapping_add(stride.wrapping_mul(u64::from(self.current) + 1)),
        );
        true
    }

    /// RNG for the current case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Index of the current case.
    pub fn case(&self) -> u32 {
        self.current
    }

    /// Base seed of this run.
    pub fn seed(&self) -> u64 {
        self.base_seed
    }
}

/// Prints replay information if the current case panics.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
}

impl CaseGuard {
    /// Arms a guard for the given case.
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard { name, case, seed }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} (base seed {:#018x}); \
                 rerun with PROPTEST_SEED to vary the stream",
                self.name, self.case, self.seed
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(stringify!($name), &config);
                while runner.next_case() {
                    let guard =
                        $crate::CaseGuard::new(stringify!($name), runner.case(), runner.seed());
                    let rng = runner.rng();
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    { $body }
                    drop(guard);
                }
            }
        )*
    };
}

/// Boolean property assertion (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality property assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced re-exports matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u32..1000, v in prop::collection::vec(any::<u8>(), 2usize..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![(0usize..4).prop_map(|v| v * 2), (10usize..12).prop_map(|v| v)]) {
            prop_assert!(k < 12);
            prop_assert!(k % 2 == 0 || k >= 10);
        }
    }
}
