//! A minimal, dependency-free benchmark harness exposing the subset of the
//! `criterion` API this workspace uses (`Criterion`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`).
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench files unchanged and reports
//! wall-clock statistics in a criterion-like format:
//!
//! ```text
//! bdd/ite_chain           time: [1.2031 ms 1.2218 ms 1.2542 ms]
//! ```
//!
//! Methodology: a short warm-up estimates the per-iteration cost, iterations
//! are then batched so each sample lasts ≈`measurement_time / sample_size`,
//! and min/mean/max over the samples are printed. Environment knobs:
//! `RFN_BENCH_SAMPLE_MS` (per-sample budget, ms) for quicker or slower runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for compatibility; benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls `iter`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget_ms = std::env::var("RFN_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let per_sample = match budget_ms {
            Some(ms) => Duration::from_millis(ms),
            None => self.measurement_time / self.sample_size as u32,
        };
        let mut b = Bencher {
            sample_size: self.sample_size,
            per_sample,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Measures one routine; handed to the closure of `bench_function`.
pub struct Bencher {
    sample_size: usize,
    per_sample: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of batched
    /// iterations. The routine's output is passed through `black_box` so the
    /// optimizer cannot discard the computation.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until ~1/4 of a sample budget has elapsed to estimate
        // the per-iteration cost (and to fault in caches / allocator state).
        let warmup_budget = self.per_sample / 4;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let est_per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let per_sample_s = self.per_sample.as_secs_f64().max(1e-4);
        let iters_per_sample = ((per_sample_s / est_per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.4} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.4} ms", ns / 1e6)
    } else {
        format!("{:.4} s", ns / 1e9)
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group!(name = benches; config = ...; targets = f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        std::env::set_var("RFN_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }
}
